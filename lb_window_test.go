package paratreet_test

import (
	"reflect"
	"testing"

	"paratreet"
	"paratreet/internal/knn"
	"paratreet/internal/lb"
)

// Load-balancing window accounting tests. Partition.LoadNanos must (a)
// accumulate across the iterations of one LB window — including across
// from-scratch rebuilds, which recreate the Partition objects — and (b)
// be zeroed at each window boundary, so the balancer sees only the last
// window's load and migration reacts when the hotspot moves.

// loadInjectDriver runs no traversals and injects a synthetic per-
// partition load in PostTraversal: heavy on the low half of the SFC
// order when *heavyLow, heavy on the high half otherwise. With no
// traversals launched there is no measured work, so the injected values
// are the partitions' exact loads and the balancer's output is exactly
// predictable.
func loadInjectDriver(heavyLow *bool, heavy int64) paratreet.DriverFuncs[knn.Data] {
	return paratreet.DriverFuncs[knn.Data]{
		TraversalFn: func(s *paratreet.Simulation[knn.Data], iter int) {},
		PostTraversalFn: func(s *paratreet.Simulation[knn.Data], iter int) {
			parts := s.Partitions()
			for i, p := range parts {
				if (i < len(parts)/2) == *heavyLow {
					p.LoadNanos += heavy
				}
			}
		},
	}
}

// windowLoads is the load vector one LB window accumulates under
// loadInjectDriver: iters injections of heavy on the chosen half.
func windowLoads(nparts, iters int, heavyLow bool, heavy int64) []int64 {
	loads := make([]int64, nparts)
	for i := range loads {
		if (i < nparts/2) == heavyLow {
			loads[i] = int64(iters) * heavy
		}
	}
	return loads
}

// TestLoadWindowSurvivesRebuilds pins the carry half of the fix: with
// scratch rebuilds every iteration (which recreate every Partition), the
// load injected in earlier iterations of the window must still be there
// before the window closes. Before the fix, rebuilt partitions started
// back at zero and the balancer only ever saw the final iteration.
func TestLoadWindowSurvivesRebuilds(t *testing.T) {
	const n = 1000
	const heavy = int64(1e12)
	heavyLow := true
	sim := newKNNSim(t, paratreet.Config{
		Procs: 2, WorkersPerProc: 1, Partitions: 8, BucketSize: 16,
		Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC,
		LB: paratreet.LBSFC, LBPeriod: 3,
	}, incParticles(n, 12))
	defer sim.Close()
	if err := sim.Run(2, loadInjectDriver(&heavyLow, heavy)); err != nil {
		t.Fatal(err)
	}
	// Two iterations into a three-iteration window: both injections must
	// have accumulated despite the second iteration's rebuild.
	for i, p := range sim.Partitions() {
		want := int64(0)
		if i < len(sim.Partitions())/2 {
			want = 2 * heavy
		}
		if p.LoadNanos != want {
			t.Fatalf("partition %d LoadNanos = %d after 2 of 3 window iters, want %d", i, p.LoadNanos, want)
		}
	}
	// Close the window: the balancer consumes the loads and zeroes them.
	if err := sim.Run(1, loadInjectDriver(&heavyLow, heavy)); err != nil {
		t.Fatal(err)
	}
	for i, p := range sim.Partitions() {
		if p.LoadNanos != 0 {
			t.Fatalf("partition %d LoadNanos = %d after window boundary, want 0", i, p.LoadNanos)
		}
	}
}

// TestMigrationReactsToLoadShift pins the windowing half of the fix on
// the incremental build path: when the hotspot moves from the low SFC
// half to the high half, the next window's placement must follow it —
// and must equal exactly what the SFC balancer maps from that window's
// loads alone. With cumulative (unwindowed) accounting the second
// placement would still be dominated by the first phase's load and stay
// put.
func TestMigrationReactsToLoadShift(t *testing.T) {
	const n = 2000
	const heavy = int64(1e12)
	const nparts = 16
	const procs = 4
	heavyLow := true
	sim := newKNNSim(t, paratreet.Config{
		Procs: procs, WorkersPerProc: 1, Partitions: nparts, BucketSize: 16,
		Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC,
		LB: paratreet.LBSFC, LBPeriod: 2,
		Incremental: true,
	}, incParticles(n, 5))
	defer sim.Close()
	driver := loadInjectDriver(&heavyLow, heavy)

	// Phase A: hotspot on the low half; the window closes at iteration 2.
	if err := sim.Run(2, driver); err != nil {
		t.Fatal(err)
	}
	if st := sim.BuildStats(); st.Mode != "incremental" {
		t.Fatalf("steady-state build took mode %q (fallback %q), want incremental", st.Mode, st.FallbackReason)
	}
	homesA := append([]int(nil), sim.World().Homes()...)
	wantA, err := lb.SFCMap(windowLoads(nparts, 2, true, heavy), procs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(homesA, wantA) {
		t.Fatalf("phase A homes = %v, want %v (SFC map of the window's loads)", homesA, wantA)
	}

	// Phase B: the hotspot shifts to the high half. After the next window
	// boundary the placement must track the shift exactly; cumulative
	// accounting would instead see a symmetric A+B load.
	heavyLow = false
	if err := sim.Run(2, driver); err != nil {
		t.Fatal(err)
	}
	if st := sim.BuildStats(); st.Mode != "incremental" {
		t.Fatalf("post-migration build took mode %q (fallback %q), want incremental", st.Mode, st.FallbackReason)
	}
	homesB := append([]int(nil), sim.World().Homes()...)
	wantB, err := lb.SFCMap(windowLoads(nparts, 2, false, heavy), procs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(homesB, wantB) {
		t.Fatalf("phase B homes = %v, want %v (SFC map of the shifted window's loads)", homesB, wantB)
	}
	if reflect.DeepEqual(homesA, homesB) {
		t.Fatal("placement did not move when the hotspot shifted halves")
	}
}
