package paratreet

import (
	"sync"

	"paratreet/internal/traverse"
)

// Wave is one batch of ad-hoc traversals over the resident tree — the
// reentrant query path that complements BuildOnly's build/refresh path.
// Unlike Run, which drives per-partition traversals and waits for global
// quiescence, a Wave tracks only its own traversals via their completion
// callbacks, so any number of waves may run concurrently over the same
// built tree (the software cache's insertions are designed for concurrent
// readers and fillers). Launch traversals from a single goroutine, then
// Wait; the results land in the buckets' State.
//
// Waves read the tree built by the most recent BuildOnly/Run iteration.
// Rebuilding (BuildOnly, Run, SetParticles) while waves are in flight is
// a race — callers serialize builds against waves (see internal/serve's
// Engine for the canonical reader-writer arrangement).
type Wave[D any] struct {
	s   *Simulation[D]
	wg  sync.WaitGroup
	seq int
}

// NewWave prepares an empty query wave over the simulation's resident
// tree. The tree must have been built (BuildOnly or a Run iteration).
func (s *Simulation[D]) NewWave() *Wave[D] {
	return &Wave[D]{s: s}
}

// QueryWave runs launch to start traversals on a fresh wave and blocks
// until every launched traversal has drained (including frames paused on
// remote fetches). It is the single-wave convenience over NewWave + Wait.
func (s *Simulation[D]) QueryWave(launch func(w *Wave[D])) {
	w := s.NewWave()
	launch(w)
	w.Wait()
}

// WaveDown launches one top-down traversal of buckets against proc's view
// of the resident tree, as part of wave w. The buckets are ad-hoc query
// targets (typically one synthetic particle each) and need not correspond
// to tree leaves; visitor state must already be attached. The traversal
// style comes from the simulation's Config, so coalesced query buckets
// share tree-node visits exactly like partition buckets do.
func WaveDown[D any, V traverse.Visitor[D]](w *Wave[D], proc int, buckets []*traverse.Bucket, visitor V) {
	s := w.s
	c := s.world.Caches[proc]
	p := s.machine.Proc(proc)
	view := c.ViewFor(w.seq % p.NumWorkers())
	w.seq++
	w.wg.Add(1)
	tr := traverse.NewTopDown(p, c, view, buckets, visitor, s.cfg.Style, w.wg.Done)
	tr.Start()
}

// Wait blocks until every traversal launched on this wave has completed.
func (w *Wave[D]) Wait() {
	w.wg.Wait()
}
