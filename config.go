package paratreet

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"paratreet/internal/metrics"
)

// Config specifies a simulation's machine, decomposition, tree, cache, and
// load-balancing parameters — the configuration object of §II-D2.
type Config struct {
	// Procs is the number of simulated processes. Default 1.
	Procs int
	// WorkersPerProc is the number of worker threads per process.
	// Default 1.
	WorkersPerProc int
	// BuildWorkers is the goroutine budget each subtree build task may use
	// for the Cornerstone-style parallel tree build (parallel key
	// assignment and radix sort, prefix-search node construction,
	// concurrent Data accumulation). 0 or 1 keeps the serial build. The
	// resulting tree is identical to the serial build's.
	BuildWorkers int

	// Tree selects the tree type (TreeOct, TreeKD, TreeLongestDim).
	Tree TreeType
	// Decomp selects the partition decomposition (DecompSFC, ...).
	Decomp DecompType
	// BucketSize is the maximum particles per leaf. Default 16.
	BucketSize int
	// Partitions is the number of Partitions (load units); the paper
	// over-decomposes, so the default is 8 per process.
	Partitions int
	// Subtrees is the number of Subtrees (memory units); default 4 per
	// process.
	Subtrees int

	// CachePolicy selects the software-cache insertion model.
	CachePolicy CachePolicy
	// FetchDepth is the number of descendant levels shipped per remote
	// request. Default 3.
	FetchDepth int
	// ShareDepth is how many levels below every subtree root are broadcast
	// to all processes before traversal (the paper's branch-node sharing
	// knob). 0 shares root summaries only.
	ShareDepth int

	// Style selects the top-down traversal loop organization.
	Style TraversalStyle

	// Incremental enables between-timestep incremental tree updates: when
	// particles moved only slightly since the previous iteration, the
	// build patches the existing trees along dirty paths instead of
	// rebuilding, skips re-broadcasting unchanged subtree summaries, keeps
	// cached remote data whose home subtree is unchanged, and re-shares
	// only the buckets of dirty leaves. Results are bit-identical to a
	// from-scratch build; unsupported configurations (non-octree trees,
	// Hilbert or ORB decompositions) and structural steps (universe or
	// splitter change) silently fall back to the scratch path — see
	// Simulation.BuildStats.
	Incremental bool

	// LB selects the load balancer; LBPeriod is how many iterations pass
	// between re-balancing (0 disables).
	LB       LBMode
	LBPeriod int

	// Latency and PerByte model the interconnect.
	Latency time.Duration
	PerByte time.Duration

	// Faults, when non-nil, injects deterministic delivery faults (drops,
	// duplicates, latency jitter, receive pauses) into the simulated
	// interconnect, driven by a PRNG seeded per proc pair from Faults.Seed.
	// Only fault-tolerant traffic (cache fetch/fill) is ever dropped or
	// duplicated; jitter and pauses apply to all cross-proc messages.
	Faults *FaultConfig
	// FetchTimeout is the cache's first fill deadline; a fetch unanswered
	// past it is re-sent with exponential backoff. 0 picks a default
	// derived from the link model when Faults can lose messages, and
	// disables retries otherwise.
	FetchTimeout time.Duration

	// Metrics, when non-nil, enables the runtime observability layer: the
	// runtime, cache, and traversal engines record counters, histograms,
	// utilization profiles, and (optionally) trace spans into the registry.
	// Nil (the default) disables all collection at near-zero cost.
	Metrics *metrics.Registry
}

// fetchTimeout resolves the effective cache fill deadline: the explicit
// FetchTimeout if set; otherwise a deadline comfortably above one
// fault-free round trip when the configured faults can lose messages, and
// 0 (retries disabled) on a lossless link.
func (c *Config) fetchTimeout() time.Duration {
	if c.FetchTimeout > 0 {
		return c.FetchTimeout
	}
	if c.Faults == nil || (c.Faults.DropProb <= 0 && c.Faults.DupProb <= 0) {
		return 0
	}
	// One round trip costs up to 2*(Latency+JitterMax) plus per-byte time
	// and insert scheduling; the millisecond floor absorbs those.
	return 2*(c.Latency+c.Faults.JitterMax) + 4*time.Millisecond
}

// ParseFaultSpec builds a FaultConfig from a comma-separated spec like
// "drop=0.02,dup=0.02,jitter=200us,pause=1ms,pauseprob=0.01,seed=7" — the
// syntax the paratreet-bench and paratreet-serve -faults flags accept.
// Probabilities are in [0,1]; durations use Go syntax.
func ParseFaultSpec(spec string) (*FaultConfig, error) {
	fc := &FaultConfig{Seed: 1}
	for _, tok := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(tok), "=")
		if !ok {
			return nil, fmt.Errorf("bad faults entry %q (want key=value)", tok)
		}
		switch k {
		case "drop", "dup", "pauseprob":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("bad faults probability %q", tok)
			}
			switch k {
			case "drop":
				fc.DropProb = p
			case "dup":
				fc.DupProb = p
			default:
				fc.PauseProb = p
			}
		case "jitter", "pause":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("bad faults duration %q", tok)
			}
			if k == "jitter" {
				fc.JitterMax = d
			} else {
				fc.PauseMax = d
			}
		case "seed":
			s, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad faults seed %q", tok)
			}
			fc.Seed = s
		default:
			return nil, fmt.Errorf("unknown faults key %q (have drop dup jitter pause pauseprob seed)", k)
		}
	}
	return fc, nil
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Procs < 0 || c.WorkersPerProc < 0 || c.BuildWorkers < 0 {
		return fmt.Errorf("paratreet: negative machine dimensions")
	}
	if c.BucketSize < 0 || c.Partitions < 0 || c.Subtrees < 0 || c.FetchDepth < 0 {
		return fmt.Errorf("paratreet: negative decomposition parameters")
	}
	if c.LBPeriod < 0 {
		return fmt.Errorf("paratreet: negative LB period")
	}
	return nil
}
