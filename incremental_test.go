package paratreet_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"paratreet"
	"paratreet/internal/gravity"
	"paratreet/internal/knn"
	"paratreet/internal/particle"
	"paratreet/internal/tree"
)

// Incremental-build differential tests: an Incremental simulation and a
// from-scratch simulation are driven through the same multi-step workload
// and must stay BIT-IDENTICAL at every step — every subtree tree node
// (keys, kinds, boxes, counts, bucketed particles, and accumulated Data,
// floats included), the gathered particle state, and the traversal
// answers. The incremental path earns its speedup purely by skipping
// work whose result is already known, never by approximating it.

// incParticles builds a clustered workload of n particles whose last 8
// are anchors pinned to the universe corners, so interior motion cannot
// change the global bounding box (a box change forces a scratch rebuild
// by design — see TestIncrementalFallbacks).
func incParticles(n int, seed int64) []particle.Particle {
	box := paratreet.Box{Max: paratreet.V(1, 1, 1)}
	ps := particle.NewClustered(n-8, seed, box, 6)
	// Clamp the clusters' Gaussian tails into the interior so the corner
	// anchors always define the bounding box, before and after drift.
	for i := range ps {
		ps[i].Pos = paratreet.V(clamp01(ps[i].Pos.X), clamp01(ps[i].Pos.Y), clamp01(ps[i].Pos.Z))
	}
	id := int64(len(ps))
	for cx := 0; cx <= 1; cx++ {
		for cy := 0; cy <= 1; cy++ {
			for cz := 0; cz <= 1; cz++ {
				ps = append(ps, particle.Particle{
					ID:   id,
					Pos:  paratreet.V(float64(cx), float64(cy), float64(cz)),
					Mass: 1e-12,
				})
				id++
			}
		}
	}
	return ps
}

func clamp01(x float64) float64 {
	if x < 0.01 {
		return 0.01
	}
	if x > 0.99 {
		return 0.99
	}
	return x
}

// drift mutates roughly `movers` interior particles (positions nudged,
// velocities rewritten), chosen and displaced deterministically by
// particle ID, so the identical mutation can be applied to two
// simulations whose particle array orders have diverged.
func drift(ps []particle.Particle, step, movers int) {
	idx := make(map[int64]int, len(ps))
	for i := range ps {
		idx[ps[i].ID] = i
	}
	interior := len(ps) - 8
	rng := rand.New(rand.NewSource(int64(7777 + step)))
	for m := 0; m < movers; m++ {
		i := idx[int64(rng.Intn(interior))]
		ps[i].Pos = paratreet.V(
			clamp01(ps[i].Pos.X+(rng.Float64()-0.5)*0.05),
			clamp01(ps[i].Pos.Y+(rng.Float64()-0.5)*0.05),
			clamp01(ps[i].Pos.Z+(rng.Float64()-0.5)*0.05),
		)
		ps[i].Vel = paratreet.V(rng.Float64(), rng.Float64(), rng.Float64())
	}
}

// requireSameNodes is the bit-identity oracle: every field of every node
// must agree, including float Data (compared exactly, not to tolerance).
func requireSameNodes[D any](t *testing.T, a, b *tree.Node[D], path string) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch", path)
	}
	if a == nil {
		return
	}
	if a.Key != b.Key || a.Level != b.Level || a.Kind() != b.Kind() {
		t.Fatalf("%s: identity mismatch: (%#x L%d %v) vs (%#x L%d %v)",
			path, a.Key, a.Level, a.Kind(), b.Key, b.Level, b.Kind())
	}
	if a.Box != b.Box || a.NParticles != b.NParticles {
		t.Fatalf("%s: box/count mismatch", path)
	}
	if !reflect.DeepEqual(a.Data, b.Data) {
		t.Fatalf("%s: Data mismatch: %+v vs %+v", path, a.Data, b.Data)
	}
	if len(a.Particles) != len(b.Particles) {
		t.Fatalf("%s: bucket sizes %d vs %d", path, len(a.Particles), len(b.Particles))
	}
	for i := range a.Particles {
		if a.Particles[i] != b.Particles[i] {
			t.Fatalf("%s: bucket particle %d differs: %+v vs %+v", path, i, a.Particles[i], b.Particles[i])
		}
	}
	if a.NumChildren() != b.NumChildren() {
		t.Fatalf("%s: child counts %d vs %d", path, a.NumChildren(), b.NumChildren())
	}
	for i := 0; i < a.NumChildren(); i++ {
		requireSameNodes(t, a.Child(i), b.Child(i), fmt.Sprintf("%s/%d", path, i))
	}
}

func sortedByID(ps []particle.Particle) []particle.Particle {
	out := particle.Clone(ps)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// requireSameWorlds compares two simulations' full resident state: every
// subtree's tree node-by-node, the canonical particle arrays (by ID), and
// the partitions' bucket contents (via Gather, also by ID).
func requireSameWorlds[D any](t *testing.T, inc, scr *paratreet.Simulation[D], label string) {
	t.Helper()
	wi, ws := inc.World(), scr.World()
	if len(wi.Subtrees) != len(ws.Subtrees) {
		t.Fatalf("%s: %d subtrees vs %d", label, len(wi.Subtrees), len(ws.Subtrees))
	}
	for i := range wi.Subtrees {
		si, ss := wi.Subtrees[i], ws.Subtrees[i]
		if si.Key != ss.Key || si.Level != ss.Level || si.Owner != ss.Owner {
			t.Fatalf("%s: subtree %d identity mismatch", label, i)
		}
		requireSameNodes(t, si.Root, ss.Root, fmt.Sprintf("%s/subtree%#x", label, si.Key))
	}
	a, b := sortedByID(inc.Particles()), sortedByID(scr.Particles())
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: canonical particle %d differs: %+v vs %+v", label, i, a[i], b[i])
			}
		}
		t.Fatalf("%s: canonical particle state differs", label)
	}
	ga, gb := sortedByID(wi.Gather(nil)), sortedByID(ws.Gather(nil))
	if !reflect.DeepEqual(ga, gb) {
		t.Fatalf("%s: partition bucket contents differ", label)
	}
}

func newKNNSim(t *testing.T, cfg paratreet.Config, ps []particle.Particle) *paratreet.Simulation[knn.Data] {
	t.Helper()
	sim, err := paratreet.NewSimulation[knn.Data](cfg, knn.Accumulator{}, knn.Codec{}, ps)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// runKNNStep runs one iteration of k-nearest-neighbor search and returns
// the found radius per particle ID.
func runKNNStep(t *testing.T, sim *paratreet.Simulation[knn.Data], n, k int) []float64 {
	t.Helper()
	got := make([]float64, n)
	driver := paratreet.DriverFuncs[knn.Data]{
		TraversalFn: func(s *paratreet.Simulation[knn.Data], iter int) {
			for _, p := range s.Partitions() {
				knn.Attach(p.Buckets(), k)
			}
			paratreet.StartUpAndDown(s, func(p *paratreet.Partition[knn.Data]) knn.Visitor {
				return knn.Visitor{K: k, ExcludeSelf: true}
			})
		},
		PostTraversalFn: func(s *paratreet.Simulation[knn.Data], iter int) {
			s.ForEachBucket(func(_ *paratreet.Partition[knn.Data], b *paratreet.Bucket) {
				st := b.State.(*knn.State)
				for i := range b.Particles {
					got[b.Particles[i].ID] = st.Radius(i)
				}
			})
		},
	}
	if err := sim.Run(1, driver); err != nil {
		t.Fatal(err)
	}
	return got
}

// incCombos enumerates the supported decomp x policy x machine matrix; in
// -short mode, the two independent sweeps instead of the crossproduct.
type incCombo struct {
	name                  string
	decomp                paratreet.DecompType
	policy                paratreet.CachePolicy
	procs, workers, build int
}

func incCombos(short bool) []incCombo {
	decomps := []struct {
		name string
		d    paratreet.DecompType
	}{{"sfc-morton", paratreet.DecompSFC}, {"oct", paratreet.DecompOct}}
	machines := []struct {
		name                  string
		procs, workers, build int
	}{{"p1w1", 1, 1, 1}, {"p2w2", 2, 2, 2}}
	var combos []incCombo
	add := func(di, pi, mi int) {
		combos = append(combos, incCombo{
			name:   fmt.Sprintf("%s/%s/%s", decomps[di].name, diffPolicies[pi].name, machines[mi].name),
			decomp: decomps[di].d, policy: diffPolicies[pi].p,
			procs: machines[mi].procs, workers: machines[mi].workers, build: machines[mi].build,
		})
	}
	if short {
		for di := range decomps {
			add(di, 0, 1)
		}
		for pi := 1; pi < len(diffPolicies); pi++ {
			add(0, pi, 1)
		}
		add(0, 0, 0)
		return combos
	}
	for di := range decomps {
		for pi := range diffPolicies {
			for mi := range machines {
				add(di, pi, mi)
			}
		}
	}
	return combos
}

func incConfig(c incCombo, incremental bool) paratreet.Config {
	return paratreet.Config{
		Procs: c.procs, WorkersPerProc: c.workers, BuildWorkers: c.build,
		Tree: paratreet.TreeOct, Decomp: c.decomp, BucketSize: 16,
		CachePolicy: c.policy, FetchDepth: 2,
		Incremental: incremental,
	}
}

// TestIncrementalMatchesScratch is the tentpole differential: across the
// decomp x policy x machine matrix, an incremental simulation must stay
// bit-identical to a from-scratch one through a multi-step ~1%-movers
// workload — same trees, same buckets, same kNN answers — while actually
// taking the incremental path from the second step on.
func TestIncrementalMatchesScratch(t *testing.T) {
	const n = 2000
	const k = 8
	const steps = 4
	ps0 := incParticles(n, 99)

	for _, c := range incCombos(testing.Short()) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			inc := newKNNSim(t, incConfig(c, true), particle.Clone(ps0))
			defer inc.Close()
			scr := newKNNSim(t, incConfig(c, false), particle.Clone(ps0))
			defer scr.Close()
			for step := 0; step < steps; step++ {
				label := fmt.Sprintf("step%d", step)
				ri := runKNNStep(t, inc, n, k)
				rs := runKNNStep(t, scr, n, k)
				for id := range ri {
					if ri[id] != rs[id] {
						t.Fatalf("%s: particle %d kNN radius %.17g (incremental) vs %.17g (scratch)",
							label, id, ri[id], rs[id])
					}
				}
				requireSameWorlds(t, inc, scr, label)
				ist, sst := inc.BuildStats(), scr.BuildStats()
				if sst.Mode != "scratch" {
					t.Fatalf("%s: scratch sim took mode %q", label, sst.Mode)
				}
				wantMode := "incremental"
				if step == 0 {
					wantMode = "scratch"
				}
				if ist.Mode != wantMode {
					t.Fatalf("%s: incremental sim took mode %q (fallback %q), want %q",
						label, ist.Mode, ist.FallbackReason, wantMode)
				}
				if step > 0 && ist.ReusedLeaves == 0 {
					t.Errorf("%s: incremental build reused no leaves", label)
				}
				drift(inc.Particles(), step, n/100)
				drift(scr.Particles(), step, n/100)
			}
		})
	}
}

// TestIncrementalGravityDataBitIdentical drives build-only steps with the
// gravity accumulator, whose Data is floating-point moments: the patched
// in-order re-fold must reproduce the scratch build's sums bit for bit,
// not merely to tolerance.
func TestIncrementalGravityDataBitIdentical(t *testing.T) {
	const n = 3000
	const steps = 5
	ps0 := incParticles(n, 41)
	mk := func(incremental bool) *paratreet.Simulation[gravity.CentroidData] {
		sim, err := paratreet.NewSimulation[gravity.CentroidData](paratreet.Config{
			Procs: 2, WorkersPerProc: 2, BuildWorkers: 2,
			Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC, BucketSize: 16,
			FetchDepth: 2, Incremental: incremental,
		}, gravity.Accumulator{}, gravity.Codec{}, particle.Clone(ps0))
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	inc, scr := mk(true), mk(false)
	defer inc.Close()
	defer scr.Close()
	for step := 0; step < steps; step++ {
		if err := inc.BuildOnly(); err != nil {
			t.Fatal(err)
		}
		if err := scr.BuildOnly(); err != nil {
			t.Fatal(err)
		}
		requireSameWorlds(t, inc, scr, fmt.Sprintf("step%d", step))
		if step > 0 && inc.BuildStats().Mode != "incremental" {
			t.Fatalf("step%d: mode %q (fallback %q)", step, inc.BuildStats().Mode, inc.BuildStats().FallbackReason)
		}
		drift(inc.Particles(), step, n/100)
		drift(scr.Particles(), step, n/100)
	}
}

// TestIncrementalFaultedMatchesScratch reruns the differential under the
// chaos fault cocktail (drops, duplicates, jitter, pauses on the cache
// wire): retries and idempotent fills must keep the incremental path
// bit-identical even when every fetch is unreliable.
func TestIncrementalFaultedMatchesScratch(t *testing.T) {
	const n = 2000
	const k = 8
	const steps = 3
	ps0 := incParticles(n, 17)
	mk := func(incremental bool) *paratreet.Simulation[knn.Data] {
		cfg := paratreet.Config{
			Procs: 2, WorkersPerProc: 2, BuildWorkers: 2,
			Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC, BucketSize: 16,
			CachePolicy: paratreet.CacheWaitFree, FetchDepth: 2,
			Incremental: incremental,
			Faults:      chaosFaults(),
		}
		return newKNNSim(t, cfg, particle.Clone(ps0))
	}
	inc, scr := mk(true), mk(false)
	defer inc.Close()
	defer scr.Close()
	for step := 0; step < steps; step++ {
		ri := runKNNStep(t, inc, n, k)
		rs := runKNNStep(t, scr, n, k)
		for id := range ri {
			if ri[id] != rs[id] {
				t.Fatalf("step%d: particle %d kNN radius %.17g (incremental) vs %.17g (scratch)",
					step, id, ri[id], rs[id])
			}
		}
		requireSameWorlds(t, inc, scr, fmt.Sprintf("step%d", step))
		if step > 0 && inc.BuildStats().Mode != "incremental" {
			t.Fatalf("step%d: mode %q (fallback %q)", step, inc.BuildStats().Mode, inc.BuildStats().FallbackReason)
		}
		drift(inc.Particles(), step, n/100)
		drift(scr.Particles(), step, n/100)
	}
	if inc.Stats().Drops == 0 || scr.Stats().Drops == 0 {
		t.Error("fault injection did not drop any messages — test not exercising faults")
	}
}

// TestIncrementalFallbacks pins the fallback ladder: unsupported
// configurations and structural steps must take the scratch path with the
// documented reason — and still produce correct state.
func TestIncrementalFallbacks(t *testing.T) {
	const n = 1000
	const k = 8

	t.Run("decomp-type", func(t *testing.T) {
		cfg := paratreet.Config{
			Procs: 1, WorkersPerProc: 2,
			Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFCHilbert, BucketSize: 16,
			Incremental: true,
		}
		sim := newKNNSim(t, cfg, incParticles(n, 3))
		defer sim.Close()
		for step := 0; step < 2; step++ {
			runKNNStep(t, sim, n, k)
			st := sim.BuildStats()
			if st.Mode != "scratch" || st.FallbackReason != "decomp-type" {
				t.Fatalf("step%d: mode %q reason %q, want scratch/decomp-type", step, st.Mode, st.FallbackReason)
			}
			drift(sim.Particles(), step, n/100)
		}
	})

	t.Run("universe-changed", func(t *testing.T) {
		cfg := paratreet.Config{
			Procs: 1, WorkersPerProc: 2,
			Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC, BucketSize: 16,
			Incremental: true,
		}
		ps := incParticles(n, 4)
		sim := newKNNSim(t, cfg, ps)
		defer sim.Close()
		runKNNStep(t, sim, n, k)
		// Push a corner anchor outward: the global bounding box grows, so
		// the previous tree's geometry is invalid and the build must fall
		// back — while still producing a correct tree for the new box.
		cur := sim.Particles()
		for i := range cur {
			if cur[i].ID == int64(n-1) {
				cur[i].Pos = paratreet.V(1.5, 1.5, 1.5)
			}
		}
		scr := newKNNSim(t, paratreet.Config{
			Procs: 1, WorkersPerProc: 2,
			Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC, BucketSize: 16,
		}, particle.Clone(cur))
		defer scr.Close()
		ri := runKNNStep(t, sim, n, k)
		rs := runKNNStep(t, scr, n, k)
		st := sim.BuildStats()
		if st.Mode != "scratch" || st.FallbackReason != "universe-changed" {
			t.Fatalf("mode %q reason %q, want scratch/universe-changed", st.Mode, st.FallbackReason)
		}
		for id := range ri {
			if ri[id] != rs[id] {
				t.Fatalf("post-fallback answers differ at particle %d", id)
			}
		}
		requireSameWorlds(t, sim, scr, "post-fallback")
	})
}
