package paratreet_test

import (
	"math"
	"testing"

	"paratreet"
	"paratreet/internal/gravity"
	"paratreet/internal/particle"
)

type CD = gravity.CentroidData

func uniformParticles(n int, seed int64) []paratreet.Particle {
	return particle.NewUniform(n, seed, paratreet.Box{Min: paratreet.V(0, 0, 0), Max: paratreet.V(1, 1, 1)})
}

func gravityDriver(par gravity.Params) paratreet.Driver[CD] {
	return paratreet.DriverFuncs[CD]{
		TraversalFn: func(s *paratreet.Simulation[CD], iter int) {
			paratreet.StartDown(s, func(p *paratreet.Partition[CD]) gravity.Visitor[CD] {
				return gravity.New(par)
			})
		},
	}
}

func TestNewSimulationValidation(t *testing.T) {
	if _, err := paratreet.NewSimulation[CD](paratreet.Config{Procs: -1}, gravity.Accumulator{}, gravity.Codec{}, uniformParticles(10, 1)); err == nil {
		t.Error("negative procs should error")
	}
	if _, err := paratreet.NewSimulation[CD](paratreet.Config{}, gravity.Accumulator{}, gravity.Codec{}, nil); err == nil {
		t.Error("no particles should error")
	}
	bad := paratreet.Config{LBPeriod: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative LB period should error")
	}
}

func TestRunMultipleIterations(t *testing.T) {
	sim, err := paratreet.NewSimulation[CD](paratreet.Config{
		Procs: 2, WorkersPerProc: 2,
		Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC, BucketSize: 8,
	}, gravity.Accumulator{}, gravity.Codec{}, uniformParticles(500, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(3, gravityDriver(gravity.DefaultParams())); err != nil {
		t.Fatal(err)
	}
	if sim.Iter() != 3 {
		t.Errorf("iter = %d", sim.Iter())
	}
	if len(sim.Particles()) != 500 {
		t.Errorf("particles = %d", len(sim.Particles()))
	}
	if sim.LastIterTime() <= 0 {
		t.Error("iteration time not measured")
	}
	if sim.Universe().IsEmpty() {
		t.Error("universe empty")
	}
}

func TestPostTraversalRuns(t *testing.T) {
	sim, err := paratreet.NewSimulation[CD](paratreet.Config{
		Procs: 1, WorkersPerProc: 2, BucketSize: 8,
	}, gravity.Accumulator{}, gravity.Codec{}, uniformParticles(300, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	posts := 0
	driver := paratreet.DriverFuncs[CD]{
		TraversalFn: func(s *paratreet.Simulation[CD], iter int) {
			paratreet.StartDown(s, func(p *paratreet.Partition[CD]) gravity.Visitor[CD] {
				return gravity.New(gravity.DefaultParams())
			})
		},
		PostTraversalFn: func(s *paratreet.Simulation[CD], iter int) {
			posts++
			// Integrate on bucket particles (the canonical state).
			s.ForEachBucket(func(p *paratreet.Partition[CD], b *paratreet.Bucket) {
				gravity.KickDrift(b.Particles, 1e-4)
			})
		},
	}
	if err := sim.Run(2, driver); err != nil {
		t.Fatal(err)
	}
	if posts != 2 {
		t.Errorf("postTraversal ran %d times", posts)
	}
	// Velocities should have changed (forces applied, then kicked).
	moved := false
	for _, p := range sim.Particles() {
		if p.Vel.NormSq() > 0 {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("integration had no effect")
	}
}

func TestLoadMeasurement(t *testing.T) {
	sim, err := paratreet.NewSimulation[CD](paratreet.Config{
		Procs: 2, WorkersPerProc: 1, BucketSize: 8, Partitions: 8,
	}, gravity.Accumulator{}, gravity.Codec{}, uniformParticles(2000, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(1, gravityDriver(gravity.DefaultParams())); err != nil {
		t.Fatal(err)
	}
	withLoad := 0
	for _, p := range sim.Partitions() {
		if p.LoadNanos > 0 {
			withLoad++
		}
	}
	if withLoad < len(sim.Partitions())/2 {
		t.Errorf("only %d/%d partitions measured load", withLoad, len(sim.Partitions()))
	}
}

func TestLoadBalancingChangesPlacement(t *testing.T) {
	// Clustered particles with SFC decomposition produce uneven loads;
	// after one LB round the placement should differ from block placement.
	ps := particle.NewClustered(3000, 5, paratreet.Box{Min: paratreet.V(0, 0, 0), Max: paratreet.V(1, 1, 1)}, 2)
	sim, err := paratreet.NewSimulation[CD](paratreet.Config{
		Procs: 4, WorkersPerProc: 1, BucketSize: 8, Partitions: 16,
		LB: paratreet.LBSFC, LBPeriod: 1,
	}, gravity.Accumulator{}, gravity.Codec{}, ps)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(2, gravityDriver(gravity.Params{G: 1, Theta: 0.3, Soft: 1e-3})); err != nil {
		t.Fatal(err)
	}
	// The SFC balancer must produce a contiguous placement that uses every
	// process. (Whether it differs from block placement depends on how
	// imbalanced the measured loads actually were.)
	homes := sim.World().Homes()
	used := map[int]bool{}
	for i := 1; i < len(homes); i++ {
		if homes[i] < homes[i-1] {
			t.Fatalf("SFC LB placement not contiguous: %v", homes)
		}
	}
	for _, h := range homes {
		used[h] = true
	}
	if len(used) != 4 {
		t.Errorf("LB placement uses %d of 4 procs: %v", len(used), homes)
	}
}

func TestSpatialLB(t *testing.T) {
	ps := particle.NewClustered(2000, 6, paratreet.Box{Min: paratreet.V(0, 0, 0), Max: paratreet.V(1, 1, 1)}, 3)
	sim, err := paratreet.NewSimulation[CD](paratreet.Config{
		Procs: 2, WorkersPerProc: 1, BucketSize: 8, Partitions: 8,
		LB: paratreet.LBSpatial, LBPeriod: 1,
	}, gravity.Accumulator{}, gravity.Codec{}, ps)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(2, gravityDriver(gravity.DefaultParams())); err != nil {
		t.Fatal(err)
	}
}

func TestLeafShareFractionSmall(t *testing.T) {
	// The paper: leaf sharing takes 0.1-0.4% of iteration time. Allow a
	// loose bound (5%) for tiny problem sizes.
	sim, err := paratreet.NewSimulation[CD](paratreet.Config{
		Procs: 2, WorkersPerProc: 2, BucketSize: 16, Partitions: 8,
	}, gravity.Accumulator{}, gravity.Codec{}, uniformParticles(5000, 7))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(1, gravityDriver(gravity.Params{G: 1, Theta: 0.3, Soft: 1e-3})); err != nil {
		t.Fatal(err)
	}
	frac := float64(sim.LeafShareTime()) / float64(sim.LastIterTime())
	if frac > 0.25 {
		t.Errorf("leaf share fraction %.3f too large", frac)
	}
}

func TestStatsAndPhases(t *testing.T) {
	sim, err := paratreet.NewSimulation[CD](paratreet.Config{
		Procs: 3, WorkersPerProc: 2, BucketSize: 8,
	}, gravity.Accumulator{}, gravity.Codec{}, uniformParticles(3000, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(1, gravityDriver(gravity.Params{G: 1, Theta: 0.3, Soft: 1e-3})); err != nil {
		t.Fatal(err)
	}
	stats := sim.Stats()
	if stats.NodeRequests == 0 || stats.Fills == 0 {
		t.Errorf("expected remote traffic, got %+v", stats)
	}
	phases := sim.PhaseTotals()
	if phases[paratreet.PhaseLocalTraversal] <= 0 {
		t.Error("no local traversal time")
	}
	if phases[paratreet.PhaseTreeBuild] <= 0 {
		t.Error("no tree build time")
	}
	sim.ResetStats()
	if sim.Stats().Fills != 0 {
		t.Error("stats not reset")
	}
}

func TestDeterministicForces(t *testing.T) {
	// Two runs over the same input produce identical accelerations
	// (floating-point determinism holds because per-particle accumulation
	// order is fixed by the traversal structure per run... it is not across
	// schedules, so compare against a loose tolerance instead).
	run := func() []paratreet.Particle {
		sim, err := paratreet.NewSimulation[CD](paratreet.Config{
			Procs: 2, WorkersPerProc: 2, BucketSize: 8,
		}, gravity.Accumulator{}, gravity.Codec{}, uniformParticles(400, 9))
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		if err := sim.Run(1, gravityDriver(gravity.Params{G: 1, Theta: 0.5, Soft: 1e-3})); err != nil {
			t.Fatal(err)
		}
		out := make([]paratreet.Particle, 400)
		for _, p := range sim.Particles() {
			out[p.ID] = p
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Acc.Sub(b[i].Acc).Norm() > 1e-9*(1+a[i].Acc.Norm()) {
			t.Fatalf("particle %d accelerations differ: %v vs %v", i, a[i].Acc, b[i].Acc)
		}
	}
}

func TestPerBucketStyleEndToEnd(t *testing.T) {
	ps := uniformParticles(600, 10)
	par := gravity.Params{G: 1, Theta: 0.5, Soft: 1e-3}
	run := func(style paratreet.TraversalStyle) []paratreet.Particle {
		sim, err := paratreet.NewSimulation[CD](paratreet.Config{
			Procs: 2, WorkersPerProc: 1, BucketSize: 8, Style: style,
		}, gravity.Accumulator{}, gravity.Codec{}, particle.Clone(ps))
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		if err := sim.Run(1, gravityDriver(par)); err != nil {
			t.Fatal(err)
		}
		out := make([]paratreet.Particle, len(ps))
		for _, p := range sim.Particles() {
			out[p.ID] = p
		}
		return out
	}
	trans := run(paratreet.StyleTransposed)
	basic := run(paratreet.StylePerBucket)
	for i := range trans {
		if trans[i].Acc.Sub(basic[i].Acc).Norm() > 1e-9*(1+trans[i].Acc.Norm()) {
			t.Fatalf("styles disagree on particle %d", i)
		}
	}
}

func TestSimulatedLatencyStillCorrect(t *testing.T) {
	sim, err := paratreet.NewSimulation[CD](paratreet.Config{
		Procs: 2, WorkersPerProc: 2, BucketSize: 8,
		Latency: 200e3, // 200us
	}, gravity.Accumulator{}, gravity.Codec{}, uniformParticles(500, 11))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(1, gravityDriver(gravity.Params{G: 1, Theta: 0.5, Soft: 1e-3})); err != nil {
		t.Fatal(err)
	}
	for _, p := range sim.Particles() {
		if math.IsNaN(p.Acc.X) {
			t.Fatal("NaN acceleration")
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	sim, err := paratreet.NewSimulation[CD](paratreet.Config{}, gravity.Accumulator{}, gravity.Codec{}, uniformParticles(10, 12))
	if err != nil {
		t.Fatal(err)
	}
	sim.Close()
	sim.Close()
}
