package paratreet_test

import (
	"math"
	"testing"

	"paratreet"
	"paratreet/internal/gravity"
	"paratreet/internal/particle"
)

// TestDynamicPlummerCollapse runs a real multi-iteration simulation in
// which particles move between iterations, exercising rebuild-per-step:
// universe recomputation, re-decomposition, subtree rebuilds, cache
// resets, and leaf re-sharing. A cold-started Plummer sphere must begin
// collapsing (kinetic energy rises, no particles lost, no NaNs).
func TestDynamicPlummerCollapse(t *testing.T) {
	const n = 3000
	ps := particle.NewPlummer(n, 99, paratreet.V(0, 0, 0), 0.5)
	sim, err := paratreet.NewSimulation[gravity.CentroidData](paratreet.Config{
		Procs: 3, WorkersPerProc: 2,
		Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC, BucketSize: 16,
		LB: paratreet.LBSFC, LBPeriod: 2,
	}, gravity.Accumulator{}, gravity.Codec{}, ps)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	par := gravity.Params{G: 1, Theta: 0.6, Soft: 1e-3}
	var kinetic []float64
	driver := paratreet.DriverFuncs[gravity.CentroidData]{
		TraversalFn: func(s *paratreet.Simulation[gravity.CentroidData], iter int) {
			s.ForEachBucket(func(_ *paratreet.Partition[gravity.CentroidData], b *paratreet.Bucket) {
				particle.ResetAcc(b.Particles)
			})
			paratreet.StartDown(s, func(p *paratreet.Partition[gravity.CentroidData]) gravity.Visitor[gravity.CentroidData] {
				return gravity.New(par)
			})
		},
		PostTraversalFn: func(s *paratreet.Simulation[gravity.CentroidData], iter int) {
			var ke float64
			s.ForEachBucket(func(_ *paratreet.Partition[gravity.CentroidData], b *paratreet.Bucket) {
				gravity.KickDrift(b.Particles, 5e-3)
				ke += gravity.KineticEnergy(b.Particles)
			})
			kinetic = append(kinetic, ke)
		},
	}
	if err := sim.Run(6, driver); err != nil {
		t.Fatal(err)
	}
	if len(sim.Particles()) != n {
		t.Fatalf("lost particles: %d", len(sim.Particles()))
	}
	seen := map[int64]bool{}
	for _, p := range sim.Particles() {
		if seen[p.ID] {
			t.Fatalf("duplicate particle %d", p.ID)
		}
		seen[p.ID] = true
		if !p.Pos.IsFinite() || !p.Vel.IsFinite() || !p.Acc.IsFinite() {
			t.Fatalf("non-finite state on particle %d", p.ID)
		}
	}
	if kinetic[len(kinetic)-1] <= kinetic[0] {
		t.Errorf("cold sphere did not start collapsing: KE %v -> %v",
			kinetic[0], kinetic[len(kinetic)-1])
	}
}

// TestMomentumConservationThroughFramework checks that the framework's
// distributed Barnes-Hut respects Newton's third law approximately: with a
// symmetric exact reference the net force is 0; BH approximation leaves a
// small residual that must shrink with theta.
func TestMomentumConservationThroughFramework(t *testing.T) {
	const n = 2000
	run := func(theta float64) float64 {
		ps := particle.NewClustered(n, 5, paratreet.Box{Max: paratreet.V(1, 1, 1)}, 4)
		sim, err := paratreet.NewSimulation[gravity.CentroidData](paratreet.Config{
			Procs: 2, WorkersPerProc: 2,
			Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC, BucketSize: 8,
		}, gravity.Accumulator{}, gravity.Codec{}, ps)
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		driver := paratreet.DriverFuncs[gravity.CentroidData]{
			TraversalFn: func(s *paratreet.Simulation[gravity.CentroidData], iter int) {
				paratreet.StartDown(s, func(p *paratreet.Partition[gravity.CentroidData]) gravity.Visitor[gravity.CentroidData] {
					return gravity.New(gravity.Params{G: 1, Theta: theta, Soft: 1e-3})
				})
			},
		}
		if err := sim.Run(1, driver); err != nil {
			t.Fatal(err)
		}
		var f paratreet.Vec3
		var scale float64
		for _, p := range sim.Particles() {
			f = f.Add(p.Acc.Scale(p.Mass))
			scale += p.Acc.Norm() * p.Mass
		}
		return f.Norm() / scale
	}
	loose := run(0.9)
	tight := run(0.3)
	if tight > 0.05 {
		t.Errorf("net force residual %.4f at theta=0.3 too large", tight)
	}
	if tight >= loose && loose > 1e-12 {
		t.Errorf("residual did not shrink with theta: %.5f (0.9) vs %.5f (0.3)", loose, tight)
	}
}

// TestAllDecompTreeCombos runs one gravity iteration under every
// decomposition x tree combination to catch integration gaps.
func TestAllDecompTreeCombos(t *testing.T) {
	ps0 := particle.NewUniform(1500, 3, paratreet.Box{Max: paratreet.V(1, 1, 1)})
	ref := particle.Clone(ps0)
	gravity.Direct(ref, gravity.Params{G: 1, Theta: 0.5, Soft: 1e-3})
	refByID := make([]particle.Particle, len(ref))
	for i := range ref {
		refByID[ref[i].ID] = ref[i]
	}
	for _, tt := range []paratreet.TreeType{paratreet.TreeOct, paratreet.TreeKD, paratreet.TreeLongestDim} {
		for _, dt := range []paratreet.DecompType{paratreet.DecompSFC, paratreet.DecompSFCHilbert, paratreet.DecompOct, paratreet.DecompORB} {
			sim, err := paratreet.NewSimulation[gravity.CentroidData](paratreet.Config{
				Procs: 2, WorkersPerProc: 2,
				Tree: tt, Decomp: dt, BucketSize: 8,
			}, gravity.Accumulator{}, gravity.Codec{}, particle.Clone(ps0))
			if err != nil {
				t.Fatal(err)
			}
			driver := paratreet.DriverFuncs[gravity.CentroidData]{
				TraversalFn: func(s *paratreet.Simulation[gravity.CentroidData], iter int) {
					paratreet.StartDown(s, func(p *paratreet.Partition[gravity.CentroidData]) gravity.Visitor[gravity.CentroidData] {
						return gravity.New(gravity.Params{G: 1, Theta: 0.5, Soft: 1e-3})
					})
				},
			}
			if err := sim.Run(1, driver); err != nil {
				t.Fatalf("%v/%v: %v", tt, dt, err)
			}
			got := make([]particle.Particle, len(ps0))
			for _, p := range sim.Particles() {
				got[p.ID] = p
			}
			med := gravity.MedianError(gravity.AccelError(got, refByID))
			sim.Close()
			if math.IsNaN(med) || med > 0.03 {
				t.Errorf("%v/%v: median error %.4f", tt, dt, med)
			}
		}
	}
}
