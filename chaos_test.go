package paratreet_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"paratreet"
	"paratreet/internal/gravity"
	"paratreet/internal/knn"
	"paratreet/internal/particle"
)

// Chaos differential tests: delivery-fault injection (dropped, duplicated,
// jittered, and paused messages on every link) must be invisible to
// application results. The cache's retry protocol re-sends lost fetch
// traffic and its idempotent insert discards duplicated fills, so the only
// observable differences from a fault-free run are timings and the
// Drops/Retries counters. kNN is an exact algorithm and must match the
// clean run bit-for-bit; Barnes-Hut gravity traverses the same interaction
// lists, so it must match to floating-point summation-order tolerance
// (resume order varies with fill arrival).

// chaosFaults is the fixed-seed fault cocktail every chaos cell runs under:
// heavy loss and duplication, plus jitter and short receive pauses so
// arrival order is thoroughly shuffled. ci.sh runs this test under -race.
func chaosFaults() *paratreet.FaultConfig {
	return &paratreet.FaultConfig{
		Seed:      1,
		DropProb:  0.15,
		DupProb:   0.10,
		JitterMax: 200 * time.Microsecond,
		PauseProb: 0.02,
		PauseMax:  100 * time.Microsecond,
	}
}

func chaosConfig(d paratreet.DecompType, p paratreet.CachePolicy, faulty bool) paratreet.Config {
	cfg := diffConfig(d, p)
	if faulty {
		cfg.Faults = chaosFaults()
	}
	return cfg
}

// TestChaosGravityUnchangedByFaults runs one Barnes-Hut pass per
// decomp x policy cell with faults on and off; accelerations must agree to
// FP tolerance, and the faulted run must actually have exercised the fault
// machinery (Drops > 0).
func TestChaosGravityUnchangedByFaults(t *testing.T) {
	const n = 2000
	par := gravity.Params{G: 1, Theta: 0.5, Soft: 1e-3}
	ps0 := particle.NewClustered(n, 1234, paratreet.Box{Max: paratreet.V(1, 1, 1)}, 6)

	for _, combo := range diffCombos(testing.Short()) {
		di, pi := combo[0], combo[1]
		name := fmt.Sprintf("%s/%s", diffDecomps[di].name, diffPolicies[pi].name)
		clean := runGravityOnce(t, chaosConfig(diffDecomps[di].d, diffPolicies[pi].p, false),
			particle.Clone(ps0), par)
		faulty := runGravityChaos(t, chaosConfig(diffDecomps[di].d, diffPolicies[pi].p, true),
			particle.Clone(ps0), par, name)
		for id := range faulty {
			diff := faulty[id].Sub(clean[id]).Norm()
			scale := math.Max(clean[id].Norm(), 1)
			if diff/scale > 1e-9 {
				t.Fatalf("%s: particle %d acc %v differs from clean run %v by %g under faults",
					name, id, faulty[id], clean[id], diff/scale)
			}
		}
	}
}

// runGravityChaos is runGravityOnce plus the fault-exercise assertions:
// the machine must record drops (faults actually fired) and terminate
// quiescence (sim.Run returning at all proves that).
func runGravityChaos(t *testing.T, cfg paratreet.Config, ps []particle.Particle, par gravity.Params, name string) []paratreet.Vec3 {
	t.Helper()
	sim, err := paratreet.NewSimulation[gravity.CentroidData](cfg, gravity.Accumulator{}, gravity.Codec{}, ps)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	driver := paratreet.DriverFuncs[gravity.CentroidData]{
		TraversalFn: func(s *paratreet.Simulation[gravity.CentroidData], iter int) {
			paratreet.StartDown(s, func(p *paratreet.Partition[gravity.CentroidData]) gravity.Visitor[gravity.CentroidData] {
				return gravity.New(par)
			})
		},
	}
	if err := sim.Run(1, driver); err != nil {
		t.Fatal(err)
	}
	stats := sim.Stats()
	if stats.Drops == 0 {
		t.Errorf("%s: faulted run recorded no drops; fault injection did not engage", name)
	}
	acc := make([]paratreet.Vec3, len(ps))
	for _, p := range sim.Particles() {
		acc[p.ID] = p.Acc
	}
	return acc
}

// TestChaosKNNIdenticalUnderFaults runs the exact kNN search with faults on
// and off; the neighbor radii must be bit-identical, since delivery faults
// may never change which nodes a traversal visits.
func TestChaosKNNIdenticalUnderFaults(t *testing.T) {
	const n = 2000
	const k = 12
	ps0 := particle.NewCosmological(n, 1234, paratreet.Box{Max: paratreet.V(1, 1, 1)})

	for _, combo := range diffCombos(testing.Short()) {
		di, pi := combo[0], combo[1]
		name := fmt.Sprintf("%s/%s", diffDecomps[di].name, diffPolicies[pi].name)
		clean := runKNNChaos(t, chaosConfig(diffDecomps[di].d, diffPolicies[pi].p, false), ps0, k, name)
		faulty := runKNNChaos(t, chaosConfig(diffDecomps[di].d, diffPolicies[pi].p, true), ps0, k, name)
		for id := range faulty {
			if faulty[id] != clean[id] {
				t.Fatalf("%s: particle %d kNN radius %.17g under faults, %.17g clean",
					name, id, faulty[id], clean[id])
			}
		}
	}
}

func runKNNChaos(t *testing.T, cfg paratreet.Config, ps0 []particle.Particle, k int, name string) []float64 {
	t.Helper()
	sim, err := paratreet.NewSimulation[knn.Data](cfg, knn.Accumulator{}, knn.Codec{}, particle.Clone(ps0))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	got := make([]float64, len(ps0))
	driver := paratreet.DriverFuncs[knn.Data]{
		TraversalFn: func(s *paratreet.Simulation[knn.Data], iter int) {
			for _, p := range s.Partitions() {
				knn.Attach(p.Buckets(), k)
			}
			paratreet.StartUpAndDown(s, func(p *paratreet.Partition[knn.Data]) knn.Visitor {
				return knn.Visitor{K: k, ExcludeSelf: true}
			})
		},
		PostTraversalFn: func(s *paratreet.Simulation[knn.Data], iter int) {
			s.ForEachBucket(func(_ *paratreet.Partition[knn.Data], b *paratreet.Bucket) {
				st := b.State.(*knn.State)
				for i := range b.Particles {
					got[b.Particles[i].ID] = st.Radius(i)
				}
			})
		},
	}
	if err := sim.Run(1, driver); err != nil {
		t.Fatal(err)
	}
	if cfg.Faults != nil {
		stats := sim.Stats()
		if stats.Drops == 0 {
			t.Errorf("%s: faulted run recorded no drops; fault injection did not engage", name)
		}
		if stats.Retries == 0 {
			t.Errorf("%s: faulted run recorded no retries despite DropProb %.2f",
				name, cfg.Faults.DropProb)
		}
	}
	return got
}
