// Package paratreet is a Go implementation of ParaTreeT, the parallel tree
// toolkit for spatial tree traversals (Hutter et al., IPDPS 2022). It
// provides the paper's core abstractions — trees adorned with
// application-defined Data accumulated leaves-to-root, traversals pruned by
// application-defined Visitors, the Partitions-Subtrees decomposition model
// that divides load and memory independently, and a wait-free shared-memory
// software cache for remote tree data — on top of a simulated distributed
// runtime of processes and worker threads.
//
// A minimal application defines three things, mirroring the paper's
// 135-line Barnes-Hut gravity code:
//
//   - a Data type with an Accumulator (leaf constructor, identity, merge),
//   - a Visitor (Open / Node / Leaf),
//   - a Driver that launches traversals each iteration.
//
// See examples/quickstart for a complete program.
//
// Beyond the batch Run loop, the build and query lifecycles are also
// available separately: Simulation.BuildOnly constructs the resident tree
// without traversing, and the Wave API (NewWave, WaveDown, Wave.Wait)
// launches reentrant ad-hoc traversal waves over it — the foundation of
// the internal/serve query service and its cmd/paratreet-serve daemon,
// which answer kNN, range, and collision-probe queries over HTTP from one
// resident tree, coalescing concurrent requests into shared waves.
package paratreet

import (
	"paratreet/internal/cache"
	"paratreet/internal/core"
	"paratreet/internal/decomp"
	"paratreet/internal/lb"
	"paratreet/internal/metrics"
	"paratreet/internal/particle"
	"paratreet/internal/rt"
	"paratreet/internal/traverse"
	"paratreet/internal/tree"
	"paratreet/internal/vec"
)

// Re-exported geometry and particle vocabulary.
type (
	// Vec3 is a 3-D vector.
	Vec3 = vec.Vec3
	// Box is an axis-aligned bounding box.
	Box = vec.Box
	// Sphere is a center plus squared radius.
	Sphere = vec.Sphere
	// Particle is a simulation body.
	Particle = particle.Particle
	// Bucket is a traversal target: a leaf bucket with writable particles.
	Bucket = traverse.Bucket
)

// V constructs a Vec3.
func V(x, y, z float64) Vec3 { return vec.V(x, y, z) }

// Generic abstractions (aliases into the implementation packages).
type (
	// Node is a spatial tree node adorned with application Data.
	Node[D any] = tree.Node[D]
	// Accumulator is the Data abstraction: leaf extraction, identity, merge.
	Accumulator[D any] = tree.Accumulator[D]
	// DataCodec serializes Data for remote fills.
	DataCodec[D any] = tree.DataCodec[D]
	// Visitor is the traversal abstraction: Open / Node / Leaf.
	Visitor[D any] = traverse.Visitor[D]
	// DualVisitor adds the cell() decision for dual-tree traversals.
	DualVisitor[D any] = traverse.DualVisitor[D]
	// Partition owns a slice of the particle load as buckets.
	Partition[D any] = core.Partition[D]
)

// BuildStats describes the most recent iteration's build: which path ran
// (scratch or incremental) and what the incremental patch reused.
type BuildStats = core.BuildStats

// TreeType selects the spatial subdivision strategy.
type TreeType = tree.Type

// Built-in tree types.
const (
	// TreeOct is the octree.
	TreeOct = tree.Octree
	// TreeKD is the k-d tree (median splits, cycling dimensions).
	TreeKD = tree.KD
	// TreeLongestDim is the longest-dimension median tree (disks).
	TreeLongestDim = tree.LongestDim
)

// DecompType selects the partition decomposition strategy.
type DecompType = decomp.Type

// Built-in decomposition types.
const (
	// DecompSFC slices the Morton space-filling curve.
	DecompSFC = decomp.SFCMorton
	// DecompSFCHilbert slices the Hilbert curve.
	DecompSFCHilbert = decomp.SFCHilbert
	// DecompOct assigns whole octree nodes.
	DecompOct = decomp.Oct
	// DecompORB recursively bisects space at particle medians.
	DecompORB = decomp.ORB
)

// CachePolicy selects the software-cache insertion model.
type CachePolicy = cache.Policy

// Built-in cache policies (§II-B, Fig 3).
const (
	// CacheWaitFree is the paper's wait-free shared-memory model.
	CacheWaitFree = cache.WaitFree
	// CacheXWrite locks every insertion ("exclusive-write").
	CacheXWrite = cache.XWrite
	// CacheSingleWorker directs all insertions to worker 0.
	CacheSingleWorker = cache.SingleWorker
	// CachePerThread gives each worker a private cache (the paper's
	// "Sequential" comparison model).
	CachePerThread = cache.PerThread
)

// TraversalStyle selects the top-down loop organization.
type TraversalStyle = traverse.Style

// Built-in traversal styles.
const (
	// StyleTransposed is ParaTreeT's locality-enhancing transposition.
	StyleTransposed = traverse.Transposed
	// StylePerBucket walks the tree once per bucket ("BasicTrav").
	StylePerBucket = traverse.PerBucket
)

// CellAction is the outcome of a dual-tree cell() decision.
type CellAction = traverse.CellAction

// Dual-tree cell() outcomes.
const (
	// CellPrune skips the pair.
	CellPrune = traverse.CellPrune
	// CellApprox applies Node to the whole target group.
	CellApprox = traverse.CellApprox
	// CellOpenSource descends the source only.
	CellOpenSource = traverse.CellOpenSource
	// CellOpenTarget splits the target group only.
	CellOpenTarget = traverse.CellOpenTarget
	// CellOpenBoth refines both sides.
	CellOpenBoth = traverse.CellOpenBoth
)

// LBMode selects the load balancer.
type LBMode = lb.Mode

// Built-in load balancers.
const (
	// LBOff keeps the static block placement.
	LBOff = lb.Off
	// LBSFC re-slices the space-filling curve by measured load.
	LBSFC = lb.SFC
	// LBSpatial recursively bisects partitions in space by load.
	LBSpatial = lb.Spatial
)

// Phase labels runtime utilization categories (Fig 9).
type Phase = rt.Phase

// Runtime phases.
const (
	PhaseTreeBuild      = rt.PhaseTreeBuild
	PhaseTopShare       = rt.PhaseTopShare
	PhaseLocalTraversal = rt.PhaseLocalTraversal
	PhaseCacheRequest   = rt.PhaseCacheRequest
	PhaseCacheInsert    = rt.PhaseCacheInsert
	PhaseResume         = rt.PhaseResume
	PhaseLeafShare      = rt.PhaseLeafShare
	PhaseIdle           = rt.PhaseIdle
	PhaseOther          = rt.PhaseOther
	NumPhases           = rt.NumPhases
)

// StatsSnapshot is a copy of the runtime's communication counters.
type StatsSnapshot = rt.StatsSnapshot

// FaultConfig specifies deterministic message-delivery fault injection;
// set it on Config.Faults. See rt.FaultConfig for field semantics.
type FaultConfig = rt.FaultConfig

// Observability layer (re-exported from internal/metrics). Construct a
// registry with NewMetricsRegistry, set it on Config.Metrics, and read
// results with Simulation.MetricsSnapshot.
type (
	// MetricsRegistry is the root of the observability layer: a named set
	// of sharded counters, histograms, and an optional span tracer. A nil
	// registry disables all collection.
	MetricsRegistry = metrics.Registry
	// MetricsOptions sizes a registry (counter shards, trace capacity).
	MetricsOptions = metrics.Options
	// MetricsSnapshot is a machine-readable profile of one run.
	MetricsSnapshot = metrics.Snapshot
	// MetricsSpan is one timestamped trace span.
	MetricsSpan = metrics.Span
	// WorkerUtil is one worker's busy/idle/tasks utilization profile.
	WorkerUtil = metrics.WorkerUtil
	// CommEdge is the message/byte volume between one pair of processes.
	CommEdge = metrics.CommEdge
)

// NewMetricsRegistry constructs an enabled metrics registry.
func NewMetricsRegistry(opts MetricsOptions) *MetricsRegistry {
	return metrics.NewRegistry(opts)
}
