package paratreet_test

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"paratreet"
	"paratreet/internal/collision"
	"paratreet/internal/gravity"
	"paratreet/internal/knn"
	"paratreet/internal/particle"
)

// Differential tests: the same fixed-seed 2k-particle dataset is run
// through every decomposition type and every cache policy, and the
// results must agree.
//
// kNN and collision are exact algorithms (their pruning criteria are
// conservative), so their outputs must be identical across the entire
// decomp x policy crossproduct regardless of tree shape. Barnes-Hut
// gravity is an approximation whose interaction lists depend on the leaf
// structure, which legitimately varies with decomposition (a leaf split
// across subtree borders buckets earlier); across decompositions gravity
// is therefore compared against the exact Direct sum with a bounded
// median error, while across cache policies — which must never change
// which interactions happen, only how remote data arrives — it must match
// to floating-point summation-order tolerance.

var diffDecomps = []struct {
	name string
	d    paratreet.DecompType
}{
	{"sfc-morton", paratreet.DecompSFC},
	{"sfc-hilbert", paratreet.DecompSFCHilbert},
	{"oct", paratreet.DecompOct},
	{"orb", paratreet.DecompORB},
}

var diffPolicies = []struct {
	name string
	p    paratreet.CachePolicy
}{
	{"waitfree", paratreet.CacheWaitFree},
	{"xwrite", paratreet.CacheXWrite},
	{"singleworker", paratreet.CacheSingleWorker},
	{"perthread", paratreet.CachePerThread},
}

// diffCombos returns the decomp x policy cells to test: the full
// crossproduct normally, the two independent sweeps in -short mode.
func diffCombos(short bool) [][2]int {
	var combos [][2]int
	if short {
		for di := range diffDecomps {
			combos = append(combos, [2]int{di, 0})
		}
		for pi := 1; pi < len(diffPolicies); pi++ {
			combos = append(combos, [2]int{0, pi})
		}
		return combos
	}
	for di := range diffDecomps {
		for pi := range diffPolicies {
			combos = append(combos, [2]int{di, pi})
		}
	}
	return combos
}

func diffConfig(d paratreet.DecompType, p paratreet.CachePolicy) paratreet.Config {
	return paratreet.Config{
		Procs: 2, WorkersPerProc: 2,
		Tree: paratreet.TreeOct, Decomp: d, BucketSize: 16,
		CachePolicy: p, FetchDepth: 2,
	}
}

// runGravityOnce computes one Barnes-Hut acceleration pass and returns
// accelerations indexed by particle ID.
func runGravityOnce(t *testing.T, cfg paratreet.Config, ps []particle.Particle, par gravity.Params) []paratreet.Vec3 {
	t.Helper()
	sim, err := paratreet.NewSimulation[gravity.CentroidData](cfg, gravity.Accumulator{}, gravity.Codec{}, ps)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	driver := paratreet.DriverFuncs[gravity.CentroidData]{
		TraversalFn: func(s *paratreet.Simulation[gravity.CentroidData], iter int) {
			paratreet.StartDown(s, func(p *paratreet.Partition[gravity.CentroidData]) gravity.Visitor[gravity.CentroidData] {
				return gravity.New(par)
			})
		},
	}
	if err := sim.Run(1, driver); err != nil {
		t.Fatal(err)
	}
	acc := make([]paratreet.Vec3, len(ps))
	for _, p := range sim.Particles() {
		acc[p.ID] = p.Acc
	}
	return acc
}

func TestDifferentialGravity(t *testing.T) {
	const n = 2000
	par := gravity.Params{G: 1, Theta: 0.5, Soft: 1e-3}
	ps0 := particle.NewClustered(n, 1234, paratreet.Box{Max: paratreet.V(1, 1, 1)}, 6)

	ref := particle.Clone(ps0)
	gravity.Direct(ref, par)
	exact := make([]paratreet.Vec3, n)
	for _, p := range ref {
		exact[p.ID] = p.Acc
	}

	// Reference BH run per decomposition (policy 0), so policy runs can be
	// held to FP tolerance against a same-tree baseline.
	perDecomp := make([][]paratreet.Vec3, len(diffDecomps))
	for _, combo := range diffCombos(testing.Short()) {
		di, pi := combo[0], combo[1]
		name := fmt.Sprintf("%s/%s", diffDecomps[di].name, diffPolicies[pi].name)
		acc := runGravityOnce(t, diffConfig(diffDecomps[di].d, diffPolicies[pi].p), particle.Clone(ps0), par)

		// Every cell: bounded error against the exact direct sum.
		var rel []float64
		for id := range acc {
			if norm := exact[id].Norm(); norm > 0 {
				rel = append(rel, acc[id].Sub(exact[id]).Norm()/norm)
			}
		}
		sort.Float64s(rel)
		if med := rel[len(rel)/2]; math.IsNaN(med) || med > 0.03 {
			t.Errorf("%s: median error vs direct sum %.4f", name, med)
		}

		// Same decomposition => same tree, same interaction lists: any two
		// policies may differ only in floating-point summation order.
		if perDecomp[di] == nil {
			perDecomp[di] = acc
			continue
		}
		base := perDecomp[di]
		for id := range acc {
			diff := acc[id].Sub(base[id]).Norm()
			scale := math.Max(base[id].Norm(), 1)
			if diff/scale > 1e-9 {
				t.Fatalf("%s: particle %d acc %v differs from %s baseline %v by %g (beyond FP tolerance)",
					name, id, acc[id], diffPolicies[0].name, base[id], diff/scale)
			}
		}
	}
}

func TestDifferentialKNN(t *testing.T) {
	const n = 2000
	const k = 12
	ps0 := particle.NewCosmological(n, 1234, paratreet.Box{Max: paratreet.V(1, 1, 1)})

	want := make([]float64, n)
	for i, nbs := range knn.BruteForce(ps0, k, true) {
		if len(nbs) != k {
			t.Fatalf("brute force found %d neighbors for particle %d", len(nbs), i)
		}
		// nbs[0] is the heap root: the farthest of the k nearest.
		want[ps0[i].ID] = math.Sqrt(nbs[0].DistSq)
	}

	for _, combo := range diffCombos(testing.Short()) {
		di, pi := combo[0], combo[1]
		name := fmt.Sprintf("%s/%s", diffDecomps[di].name, diffPolicies[pi].name)
		sim, err := paratreet.NewSimulation[knn.Data](diffConfig(diffDecomps[di].d, diffPolicies[pi].p),
			knn.Accumulator{}, knn.Codec{}, particle.Clone(ps0))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		driver := paratreet.DriverFuncs[knn.Data]{
			TraversalFn: func(s *paratreet.Simulation[knn.Data], iter int) {
				for _, p := range s.Partitions() {
					knn.Attach(p.Buckets(), k)
				}
				paratreet.StartUpAndDown(s, func(p *paratreet.Partition[knn.Data]) knn.Visitor {
					return knn.Visitor{K: k, ExcludeSelf: true}
				})
			},
			PostTraversalFn: func(s *paratreet.Simulation[knn.Data], iter int) {
				s.ForEachBucket(func(_ *paratreet.Partition[knn.Data], b *paratreet.Bucket) {
					st := b.State.(*knn.State)
					for i := range b.Particles {
						got[b.Particles[i].ID] = st.Radius(i)
					}
				})
			},
		}
		err = sim.Run(1, driver)
		sim.Close()
		if err != nil {
			t.Fatal(err)
		}
		for id := range got {
			if math.Abs(got[id]-want[id]) > 1e-12 {
				t.Fatalf("%s: particle %d kNN radius %.17g, want %.17g", name, id, got[id], want[id])
			}
		}
	}
}

func TestDifferentialCollision(t *testing.T) {
	const n = 2000
	dp := particle.DefaultDiskParams()
	dp.BodyRadius = 0.01 // inflated so a handful of overlaps exist
	ps0 := particle.NewDisk(n, 1234, dp)
	const dt = 0.05
	const minID = 2 // skip star and planet

	want := collision.BruteForce(ps0, dt, minID)
	if len(want) == 0 {
		t.Fatal("test setup: no collisions in reference")
	}

	for _, combo := range diffCombos(testing.Short()) {
		di, pi := combo[0], combo[1]
		name := fmt.Sprintf("%s/%s", diffDecomps[di].name, diffPolicies[pi].name)
		sim, err := paratreet.NewSimulation[collision.Data](diffConfig(diffDecomps[di].d, diffPolicies[pi].p),
			collision.Accumulator{}, collision.Codec{}, particle.Clone(ps0))
		if err != nil {
			t.Fatal(err)
		}
		rec := collision.NewRecorder()
		driver := paratreet.DriverFuncs[collision.Data]{
			TraversalFn: func(s *paratreet.Simulation[collision.Data], iter int) {
				for _, p := range s.Partitions() {
					collision.Attach(p.Buckets())
				}
				paratreet.StartDown(s, func(p *paratreet.Partition[collision.Data]) collision.Visitor[collision.Data] {
					return collision.New(dt, 1, rec, minID)
				})
			},
		}
		err = sim.Run(1, driver)
		sim.Close()
		if err != nil {
			t.Fatal(err)
		}
		got := make([][2]int64, 0, rec.Count())
		for _, e := range rec.Events {
			a, b := e.A, e.B
			if a > b {
				a, b = b, a
			}
			got = append(got, [2]int64{a, b})
		}
		sort.Slice(got, func(i, j int) bool {
			if got[i][0] != got[j][0] {
				return got[i][0] < got[j][0]
			}
			return got[i][1] < got[j][1]
		})
		if len(got) != len(want) {
			t.Fatalf("%s: found %d pairs, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: pair %d = %v, want %v", name, i, got[i], want[i])
			}
		}
	}
}
