GO ?= go

.PHONY: all build test vet lint lint-fix-check race bench fuzz ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis: concurrency, quiescence-accounting, and
# hot-path invariants (atomicalign, hotpath, leakcheck, lockcheck,
# lockorder, nilrecv, pendingbalance, purevisit). Pure stdlib; see
# DESIGN.md "Static analysis" for the directive conventions.
lint:
	$(GO) run ./cmd/paratreet-lint ./...

# lint-fix-check is the full hygiene gate for a lint-affecting change:
# formatting (the golden tests and waivers are line-anchored), the
# analyzers' own unit and golden tests, then the repo-wide sweep.
lint-fix-check:
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) test ./internal/analysis/...
	$(GO) run ./cmd/paratreet-lint ./...

# Race-mode gate: short mode keeps the differential crossproduct and the
# larger integration runs at smoke scale so the -race schedule finishes
# quickly while still exercising every concurrent code path.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Brief fuzz pass over the SFC encode/decode pairs (property seeds run in
# plain `make test`; this additionally explores random inputs).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzMortonRoundTrip -fuzztime 10s ./internal/sfc
	$(GO) test -run '^$$' -fuzz FuzzHilbertRoundTrip -fuzztime 10s ./internal/sfc

ci:
	./scripts/ci.sh
