package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paratreet/internal/metrics"
	"paratreet/internal/trace"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	snaps := []*metrics.Snapshot{{
		Label: "fixture",
		Spans: []metrics.Span{
			{Name: "task", Kind: metrics.EvTask, Proc: 0, Worker: 0, StartNs: 0, DurNs: 5000},
			{Name: "fetch", Kind: metrics.EvFetch, Proc: 0, Worker: -1, Flow: 1, StartNs: 1000, DurNs: 0},
			{Name: "fill", Kind: metrics.EvFill, Proc: 0, Worker: -1, Flow: 1, StartNs: 3000, DurNs: 500},
			{Name: "local-traversal", Kind: metrics.EvPhase, Proc: 0, Worker: -1, StartNs: 0, DurNs: 5000},
		},
	}}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteChrome(f, snaps); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCommands(t *testing.T) {
	path := writeFixture(t)
	opts := trace.ReportOptions{TopK: 5, Width: 32}
	wants := map[string]string{
		"report":   "== critical path ==",
		"gantt":    "== gantt ==",
		"phases":   "local-traversal",
		"spans":    "== top 4 spans ==", // k clamps to the event count
		"rtt":      "pairs 1",
		"critpath": "== critical path ==",
		"validate": "",
	}
	for cmd, want := range wants {
		var buf bytes.Buffer
		if err := run(&buf, cmd, path, opts); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("%s output missing %q:\n%s", cmd, want, buf.String())
		}
	}
}

func TestRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	opts := trace.ReportOptions{}
	if err := run(&buf, "report", filepath.Join(t.TempDir(), "missing.json"), opts); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, "report", bad, opts); err == nil {
		t.Fatal("malformed trace accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"traceEvents":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, "validate", empty, opts); err == nil {
		t.Fatal("empty trace validated")
	}
	good := writeFixture(t)
	if err := run(&buf, "frobnicate", good, opts); err == nil {
		t.Fatal("unknown command accepted")
	}
}
