// Command paratreet-trace analyzes Chrome Trace Event Format JSON
// produced by paratreet-bench -trace-out (or by trace.WriteChrome):
// Projections-style timeline reports in the terminal, no browser needed.
//
// Usage:
//
//	paratreet-trace [flags] <command> <trace.json>
//
// Commands:
//
//	report    all sections (summary, gantt, phases, spans, rtt, critpath)
//	gantt     per-worker utilization timeline
//	phases    per-phase totals and load imbalance (max/mean)
//	spans     top-k longest spans
//	rtt       fetch round-trip attribution
//	critpath  critical-path estimate through the event DAG
//	validate  parse and sanity-check the trace, print nothing on success
//
// The exit status is nonzero for malformed, empty, or invalid traces, so
// CI can gate on trace health.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"paratreet/internal/trace"
)

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"usage: paratreet-trace [flags] <report|gantt|phases|spans|rtt|critpath|validate> <trace.json>\n")
	flag.PrintDefaults()
}

func main() {
	topK := flag.Int("k", 10, "top-k spans to list")
	width := flag.Int("width", 64, "gantt chart width in columns")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 2 {
		usage()
		os.Exit(2)
	}
	cmd, path := flag.Arg(0), flag.Arg(1)
	if err := run(os.Stdout, cmd, path, trace.ReportOptions{TopK: *topK, Width: *width}); err != nil {
		fmt.Fprintf(os.Stderr, "paratreet-trace: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, cmd, path string, opts trace.ReportOptions) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := trace.ReadChrome(f)
	if err != nil {
		return err
	}
	if err := t.Validate(); err != nil {
		return err
	}
	switch cmd {
	case "report":
		return trace.WriteReport(w, t, opts)
	case "gantt":
		t.AttributeWorkers()
		return trace.WriteGantt(w, t, opts.Width)
	case "phases":
		t.AttributeWorkers()
		return trace.WritePhases(w, t)
	case "spans":
		t.AttributeWorkers()
		return trace.WriteTopSpans(w, t, opts.TopK)
	case "rtt":
		t.AttributeWorkers()
		return trace.WriteFetchRTT(w, t)
	case "critpath":
		t.AttributeWorkers()
		return trace.WriteCriticalPath(w, t)
	case "validate":
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
