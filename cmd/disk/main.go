// Command disk runs the planet-forming-disk case study (§IV): a
// planetesimal disk with a Jupiter-mass perturber evolved under
// self-gravity with collision detection, printing the radial collision
// profile with the 3:1, 2:1, and 5:3 mean-motion resonances marked
// (Fig 12), using the longest-dimension tree and ORB decomposition the
// case study advocates (Fig 13).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"paratreet/internal/experiments"
)

func main() {
	var (
		n     = flag.Int("n", 20000, "number of planetesimals")
		steps = flag.Int("steps", 60, "integration steps")
		dt    = flag.Float64("dt", 0.02, "step size")
		w     = flag.Int("workers", 4, "total simulated workers")
		boost = flag.Float64("boost", 4000, "body-radius inflation for laptop-scale N")
		seed  = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	opts := experiments.DiskOptions{
		N: *n, Steps: *steps, Dt: *dt, Workers: *w, Seed: *seed, RadiusBoost: *boost,
	}
	start := time.Now()
	res, err := experiments.RunFig12(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())

	fmt.Printf("\nperiod profile (collisions per orbital-period bin):\n")
	maxC := 1
	for _, c := range res.PeriodBins {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range res.PeriodBins {
		if c == 0 {
			continue
		}
		p := 75.0 * (float64(i) + 0.5) / float64(len(res.PeriodBins))
		fmt.Printf("P=%5.1f %4d %s\n", p, c, strings.Repeat("*", c*40/maxC))
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}
