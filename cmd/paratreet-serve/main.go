// Command paratreet-serve holds a resident spatial tree and answers
// ad-hoc kNN, fixed-radius range, and collision-probe queries over
// HTTP/JSON. Concurrent requests are coalesced by a wave batcher into
// shared traversal waves over the resident tree (see DESIGN.md §11).
//
// Usage:
//
//	paratreet-serve [flags]
//
// Endpoints:
//
//	POST /query/knn    {"pos":[x,y,z],"k":8}
//	POST /query/range  {"pos":[x,y,z],"radius":0.05}
//	POST /query/probe  {"pos":[x,y,z],"radius":0.01,"vel":[x,y,z],"dt":0.001}
//	GET  /healthz /stats /snapshot /debug/vars /debug/pprof/
//
// SIGINT/SIGTERM drains gracefully: intake stops (503), queued and
// in-flight waves complete and deliver, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paratreet"
	"paratreet/internal/particle"
	"paratreet/internal/serve"
	"paratreet/internal/trace"
	"paratreet/internal/vec"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		n          = flag.Int("n", 40000, "resident particle count")
		dist       = flag.String("dist", "clustered", "particle distribution: uniform, clustered, cosmo")
		seed       = flag.Int64("seed", 42, "dataset seed")
		procs      = flag.Int("procs", 4, "simulated processes")
		wpp        = flag.Int("wpp", 2, "workers per simulated process")
		treeKind   = flag.String("tree", "oct", "tree type: oct, kd, longest")
		decompKind = flag.String("decomp", "sfc", "decomposition: sfc, hilbert, oct, orb")
		policy     = flag.String("policy", "waitfree", "cache policy: waitfree, xwrite, single, perthread")
		bucket     = flag.Int("bucket", 16, "max particles per leaf")
		batch      = flag.Int("batch", 32, "max queries coalesced into one wave")
		batchWait  = flag.Duration("batch-wait", 2*time.Millisecond, "max time a query waits for co-batching")
		queueCap   = flag.Int("queue", 0, "admission queue bound (0 = 4x batch)")
		waves      = flag.Int("waves", 2, "max concurrently running waves")
		timeout    = flag.Duration("timeout", 2*time.Second, "default per-request deadline")
		faults     = flag.String("faults", "", "inject delivery faults, e.g. drop=0.02,dup=0.02,jitter=200us,seed=7")
		rtTimers   = flag.Bool("rt-timers", true, "run batch flush timers on the simulated machine's delayed self-messages instead of host timers")
		traceCap   = flag.Int("trace", 0, "trace-span ring capacity (0 = tracing off)")
		traceOut   = flag.String("trace-out", "", "write spans as Chrome Trace Event JSON here on shutdown (implies -trace 65536 when -trace is unset)")
		metricsOut = flag.String("metrics-out", "", "write the final metrics snapshot as JSON here on shutdown")
	)
	flag.Parse()
	if err := run(*addr, *n, *dist, *seed, *procs, *wpp, *treeKind, *decompKind, *policy,
		*bucket, *batch, *batchWait, *queueCap, *waves, *timeout, *faults, *rtTimers,
		*traceCap, *traceOut, *metricsOut); err != nil {
		fmt.Fprintf(os.Stderr, "paratreet-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, n int, dist string, seed int64, procs, wpp int,
	treeKind, decompKind, policy string, bucket, batch int, batchWait time.Duration,
	queueCap, waves int, timeout time.Duration, faults string, rtTimers bool,
	traceCap int, traceOut, metricsOut string) error {
	if traceOut != "" && traceCap == 0 {
		traceCap = 65536
	}
	cfg := paratreet.Config{
		Procs:          procs,
		WorkersPerProc: wpp,
		BucketSize:     bucket,
		Metrics:        paratreet.NewMetricsRegistry(paratreet.MetricsOptions{TraceCapacity: traceCap}),
	}
	var err error
	if cfg.Tree, err = parseTree(treeKind); err != nil {
		return err
	}
	if cfg.Decomp, err = parseDecomp(decompKind); err != nil {
		return err
	}
	if cfg.CachePolicy, err = parsePolicy(policy); err != nil {
		return err
	}
	if faults != "" {
		if cfg.Faults, err = paratreet.ParseFaultSpec(faults); err != nil {
			return err
		}
	}

	ps, err := makeParticles(dist, n, seed)
	if err != nil {
		return err
	}
	fmt.Printf("paratreet-serve: building resident %s tree over %d %s particles (%d procs x %d workers)\n",
		treeKind, n, dist, procs, wpp)
	eng, err := serve.NewEngine(cfg, ps)
	if err != nil {
		return err
	}
	defer eng.Close()

	scfg := serve.ServerConfig{
		Batch: serve.BatchConfig{
			MaxBatch: batch,
			MaxWait:  batchWait,
			MaxQueue: queueCap,
			MaxWaves: waves,
		},
		DefaultTimeout: timeout,
	}
	if rtTimers {
		scfg.Batch.AfterFunc = eng.TimerAfterFunc()
	}
	srv := serve.NewServer(eng, scfg)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("paratreet-serve: listening on http://%s\n", ln.Addr())
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		return err
	}

	// Graceful drain: stop accepting connections, finish in-flight HTTP
	// exchanges, then flush every queued query through its wave.
	fmt.Println("paratreet-serve: signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "paratreet-serve: http shutdown: %v\n", err)
	}
	srv.Drain()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "paratreet-serve: serve: %v\n", err)
	}

	if traceOut != "" || metricsOut != "" {
		snap := eng.Snapshot()
		if traceOut != "" {
			if err := writeTrace(traceOut, snap); err != nil {
				return err
			}
			fmt.Printf("paratreet-serve: wrote trace to %s\n", traceOut)
		}
		if metricsOut != "" {
			if err := writeMetrics(metricsOut, snap); err != nil {
				return err
			}
			fmt.Printf("paratreet-serve: wrote metrics to %s\n", metricsOut)
		}
	}
	fmt.Println("paratreet-serve: drained, bye")
	return nil
}

func makeParticles(dist string, n int, seed int64) ([]paratreet.Particle, error) {
	box := vec.UnitBox()
	switch dist {
	case "uniform":
		return particle.NewUniform(n, seed, box), nil
	case "clustered":
		return particle.NewClustered(n, seed, box, 8), nil
	case "cosmo":
		return particle.NewCosmological(n, seed, box), nil
	}
	return nil, fmt.Errorf("unknown -dist %q (uniform, clustered, cosmo)", dist)
}

func parseTree(s string) (paratreet.TreeType, error) {
	switch s {
	case "oct":
		return paratreet.TreeOct, nil
	case "kd":
		return paratreet.TreeKD, nil
	case "longest":
		return paratreet.TreeLongestDim, nil
	}
	return 0, fmt.Errorf("unknown -tree %q (oct, kd, longest)", s)
}

func parseDecomp(s string) (paratreet.DecompType, error) {
	switch s {
	case "sfc":
		return paratreet.DecompSFC, nil
	case "hilbert":
		return paratreet.DecompSFCHilbert, nil
	case "oct":
		return paratreet.DecompOct, nil
	case "orb":
		return paratreet.DecompORB, nil
	}
	return 0, fmt.Errorf("unknown -decomp %q (sfc, hilbert, oct, orb)", s)
}

func parsePolicy(s string) (paratreet.CachePolicy, error) {
	switch s {
	case "waitfree":
		return paratreet.CacheWaitFree, nil
	case "xwrite":
		return paratreet.CacheXWrite, nil
	case "single":
		return paratreet.CacheSingleWorker, nil
	case "perthread":
		return paratreet.CachePerThread, nil
	}
	return 0, fmt.Errorf("unknown -policy %q (waitfree, xwrite, single, perthread)", s)
}

func writeTrace(dest string, snap *paratreet.MetricsSnapshot) error {
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, []*paratreet.MetricsSnapshot{snap}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeMetrics(dest string, snap *paratreet.MetricsSnapshot) error {
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
