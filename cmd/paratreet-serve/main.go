// Command paratreet-serve holds a resident spatial tree and answers
// ad-hoc kNN, fixed-radius range, and collision-probe queries over
// HTTP/JSON. Concurrent requests are coalesced by a wave batcher into
// shared traversal waves over the resident tree (see DESIGN.md §11).
//
// Usage:
//
//	paratreet-serve [flags]
//
// Endpoints:
//
//	POST /query/knn    {"pos":[x,y,z],"k":8}
//	POST /query/range  {"pos":[x,y,z],"radius":0.05}
//	POST /query/probe  {"pos":[x,y,z],"radius":0.01,"vel":[x,y,z],"dt":0.001}
//	GET  /healthz /readyz /stats /metrics /snapshot /debug/vars /debug/pprof/
//
// /healthz is liveness (200 while the process runs); /readyz is
// readiness and answers 503 while draining or out of SLO; /metrics is
// Prometheus text exposition. The -slo-* flags arm the SLO watchdog; the
// -health-interval flag paces the runtime-health collector.
//
// SIGINT/SIGTERM drains gracefully: readiness flips to 503 first, a
// -drain-grace window lets load balancers observe it, then intake stops,
// queued and in-flight waves complete and deliver, and the process exits
// 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paratreet"
	"paratreet/internal/metrics"
	"paratreet/internal/particle"
	"paratreet/internal/serve"
	"paratreet/internal/trace"
	"paratreet/internal/vec"
)

// options collects every daemon flag; run takes it whole so the flag
// set and the runtime wiring stay in one-to-one correspondence.
type options struct {
	addr       string
	n          int
	dist       string
	seed       int64
	procs      int
	wpp        int
	treeKind   string
	decompKind string
	policy     string
	bucket     int

	batch       int
	batchWait   time.Duration
	queueCap    int
	waves       int
	timeout     time.Duration
	faults      string
	rtTimers    bool
	incremental bool

	traceCap   int
	traceOut   string
	metricsOut string

	healthInterval time.Duration
	sloWindow      time.Duration
	sloInterval    time.Duration
	sloP99         time.Duration
	sloMaxErr      float64
	sloMinSamples  int
	drainGrace     time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "HTTP listen address")
	flag.IntVar(&o.n, "n", 40000, "resident particle count")
	flag.StringVar(&o.dist, "dist", "clustered", "particle distribution: uniform, clustered, cosmo")
	flag.Int64Var(&o.seed, "seed", 42, "dataset seed")
	flag.IntVar(&o.procs, "procs", 4, "simulated processes")
	flag.IntVar(&o.wpp, "wpp", 2, "workers per simulated process")
	flag.StringVar(&o.treeKind, "tree", "oct", "tree type: oct, kd, longest")
	flag.StringVar(&o.decompKind, "decomp", "sfc", "decomposition: sfc, hilbert, oct, orb")
	flag.StringVar(&o.policy, "policy", "waitfree", "cache policy: waitfree, xwrite, single, perthread")
	flag.IntVar(&o.bucket, "bucket", 16, "max particles per leaf")
	flag.IntVar(&o.batch, "batch", 32, "max queries coalesced into one wave")
	flag.DurationVar(&o.batchWait, "batch-wait", 2*time.Millisecond, "max time a query waits for co-batching")
	flag.IntVar(&o.queueCap, "queue", 0, "admission queue bound (0 = 4x batch)")
	flag.IntVar(&o.waves, "waves", 2, "max concurrently running waves")
	flag.DurationVar(&o.timeout, "timeout", 2*time.Second, "default per-request deadline")
	flag.StringVar(&o.faults, "faults", "", "inject delivery faults, e.g. drop=0.02,dup=0.02,jitter=200us,seed=7")
	flag.BoolVar(&o.rtTimers, "rt-timers", true, "run batch flush timers on the simulated machine's delayed self-messages instead of host timers")
	flag.BoolVar(&o.incremental, "incremental", false, "patch the resident tree incrementally on refresh when particles moved only slightly")
	flag.IntVar(&o.traceCap, "trace", 0, "trace-span ring capacity (0 = tracing off)")
	flag.StringVar(&o.traceOut, "trace-out", "", "write spans as Chrome Trace Event JSON here on shutdown (implies -trace 65536 when -trace is unset)")
	flag.StringVar(&o.metricsOut, "metrics-out", "", "write the final metrics snapshot as JSON here on shutdown")
	flag.DurationVar(&o.healthInterval, "health-interval", time.Second, "runtime-health sampling cadence (0 disables the collector)")
	flag.DurationVar(&o.sloWindow, "slo-window", 10*time.Second, "SLO rolling evaluation window")
	flag.DurationVar(&o.sloInterval, "slo-interval", time.Second, "SLO evaluation cadence and window slot width")
	flag.DurationVar(&o.sloP99, "slo-p99", 0, "SLO p99 request-latency objective (0 disables)")
	flag.Float64Var(&o.sloMaxErr, "slo-maxerr", 0, "SLO max error-rate objective, e.g. 0.05 (0 disables)")
	flag.IntVar(&o.sloMinSamples, "slo-min-samples", 20, "min requests in window before the SLO evaluates")
	flag.DurationVar(&o.drainGrace, "drain-grace", 0, "after SIGTERM, keep serving with /readyz=503 this long before stopping intake")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "paratreet-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.batch < 1 {
		return fmt.Errorf("-batch must be >= 1, got %d", o.batch)
	}
	if o.queueCap < 0 {
		return fmt.Errorf("-queue must be >= 0, got %d", o.queueCap)
	}
	if o.traceOut != "" && o.traceCap == 0 {
		o.traceCap = 65536
	}
	cfg := paratreet.Config{
		Procs:          o.procs,
		WorkersPerProc: o.wpp,
		BucketSize:     o.bucket,
		Incremental:    o.incremental,
		Metrics:        paratreet.NewMetricsRegistry(paratreet.MetricsOptions{TraceCapacity: o.traceCap}),
	}
	var err error
	if cfg.Tree, err = parseTree(o.treeKind); err != nil {
		return err
	}
	if cfg.Decomp, err = parseDecomp(o.decompKind); err != nil {
		return err
	}
	if cfg.CachePolicy, err = parsePolicy(o.policy); err != nil {
		return err
	}
	if o.faults != "" {
		if cfg.Faults, err = paratreet.ParseFaultSpec(o.faults); err != nil {
			return err
		}
	}

	ps, err := makeParticles(o.dist, o.n, o.seed)
	if err != nil {
		return err
	}
	fmt.Printf("paratreet-serve: building resident %s tree over %d %s particles (%d procs x %d workers)\n",
		o.treeKind, o.n, o.dist, o.procs, o.wpp)
	eng, err := serve.NewEngine(cfg, ps)
	if err != nil {
		return err
	}
	defer eng.Close()

	scfg := serve.ServerConfig{
		Batch: serve.BatchConfig{
			MaxBatch: o.batch,
			MaxWait:  o.batchWait,
			MaxQueue: o.queueCap,
			MaxWaves: o.waves,
		},
		DefaultTimeout: o.timeout,
		SLO: serve.SLOConfig{
			Window:       o.sloWindow,
			Interval:     o.sloInterval,
			MaxErrorRate: o.sloMaxErr,
			MaxP99:       o.sloP99,
			MinSamples:   o.sloMinSamples,
		},
	}
	if o.rtTimers {
		scfg.Batch.AfterFunc = eng.TimerAfterFunc()
	}
	srv := serve.NewServer(eng, scfg)

	if o.healthInterval > 0 {
		bat := srv.Batcher()
		reg := cfg.Metrics
		health := metrics.StartHealth(reg, metrics.HealthConfig{
			Interval: o.healthInterval,
			// Fold serve saturation into the same tick: queue depth and
			// in-flight waves move with every pump, but the ticker
			// guarantees a fresh reading even on an idle batcher.
			Extra: func() {
				reg.Gauge(metrics.GServeQueueDepth).Set(int64(bat.QueueDepth()))
				reg.Gauge(metrics.GServeInflightWaves).Set(int64(bat.InFlight()))
			},
		})
		defer health.Stop()
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	fmt.Printf("paratreet-serve: listening on http://%s\n", ln.Addr())
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		return err
	}

	// Graceful drain, in readiness-first order: flip /readyz to 503 while
	// still serving (load balancers steer away during the grace window),
	// then stop accepting connections and finish in-flight HTTP
	// exchanges, then flush every queued query through its wave.
	fmt.Println("paratreet-serve: signal received, draining")
	srv.BeginDrain()
	if o.drainGrace > 0 {
		time.Sleep(o.drainGrace)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "paratreet-serve: http shutdown: %v\n", err)
	}
	srv.Drain()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "paratreet-serve: serve: %v\n", err)
	}

	if o.traceOut != "" || o.metricsOut != "" {
		snap := eng.Snapshot()
		if o.traceOut != "" {
			if err := writeTrace(o.traceOut, snap); err != nil {
				return err
			}
			fmt.Printf("paratreet-serve: wrote trace to %s\n", o.traceOut)
		}
		if o.metricsOut != "" {
			if err := writeMetrics(o.metricsOut, snap); err != nil {
				return err
			}
			fmt.Printf("paratreet-serve: wrote metrics to %s\n", o.metricsOut)
		}
	}
	fmt.Println("paratreet-serve: drained, bye")
	return nil
}

func makeParticles(dist string, n int, seed int64) ([]paratreet.Particle, error) {
	box := vec.UnitBox()
	switch dist {
	case "uniform":
		return particle.NewUniform(n, seed, box), nil
	case "clustered":
		return particle.NewClustered(n, seed, box, 8), nil
	case "cosmo":
		return particle.NewCosmological(n, seed, box), nil
	}
	return nil, fmt.Errorf("unknown -dist %q (uniform, clustered, cosmo)", dist)
}

func parseTree(s string) (paratreet.TreeType, error) {
	switch s {
	case "oct":
		return paratreet.TreeOct, nil
	case "kd":
		return paratreet.TreeKD, nil
	case "longest":
		return paratreet.TreeLongestDim, nil
	}
	return 0, fmt.Errorf("unknown -tree %q (oct, kd, longest)", s)
}

func parseDecomp(s string) (paratreet.DecompType, error) {
	switch s {
	case "sfc":
		return paratreet.DecompSFC, nil
	case "hilbert":
		return paratreet.DecompSFCHilbert, nil
	case "oct":
		return paratreet.DecompOct, nil
	case "orb":
		return paratreet.DecompORB, nil
	}
	return 0, fmt.Errorf("unknown -decomp %q (sfc, hilbert, oct, orb)", s)
}

func parsePolicy(s string) (paratreet.CachePolicy, error) {
	switch s {
	case "waitfree":
		return paratreet.CacheWaitFree, nil
	case "xwrite":
		return paratreet.CacheXWrite, nil
	case "single":
		return paratreet.CacheSingleWorker, nil
	case "perthread":
		return paratreet.CachePerThread, nil
	}
	return 0, fmt.Errorf("unknown -policy %q (waitfree, xwrite, single, perthread)", s)
}

func writeTrace(dest string, snap *paratreet.MetricsSnapshot) error {
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, []*paratreet.MetricsSnapshot{snap}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeMetrics(dest string, snap *paratreet.MetricsSnapshot) error {
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
