// Command gravity is the production-style Barnes-Hut N-body driver: it
// reads or generates a particle dataset, evolves it under self-gravity
// with the library's multipole solver on a simulated distributed machine,
// reports per-iteration timing and energy diagnostics, and can write the
// final state back to disk in the native dataset format.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"paratreet"
	"paratreet/internal/gravity"
	"paratreet/internal/particle"
)

func main() {
	var (
		input   = flag.String("i", "", "input dataset (native format); empty generates")
		output  = flag.String("o", "", "output dataset path (optional)")
		n       = flag.Int("n", 100000, "particles to generate when -i is empty")
		dist    = flag.String("dist", "plummer", "generator: uniform|plummer|clustered|cosmo")
		iters   = flag.Int("iters", 10, "iterations")
		theta   = flag.Float64("theta", 0.7, "opening angle")
		soft    = flag.Float64("soft", 1e-4, "softening length")
		quad    = flag.Bool("quad", false, "enable quadrupole moments")
		dt      = flag.Float64("dt", 1e-3, "leapfrog step (0 disables integration)")
		procs   = flag.Int("procs", 4, "simulated processes")
		wpp     = flag.Int("wpp", 2, "workers per process")
		treeArg = flag.String("tree", "oct", "tree type: oct|kd|longest")
		decomp  = flag.String("decomp", "sfc", "decomposition: sfc|hilbert|oct|orb")
		lbArg   = flag.String("lb", "off", "load balancer: off|sfc|spatial")
		bucket  = flag.Int("bucket", 16, "bucket size")
		seed    = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	ps, err := loadOrGenerate(*input, *dist, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	treeType, err := parseTree(*treeArg)
	if err != nil {
		log.Fatal(err)
	}
	decompType, err := parseDecomp(*decomp)
	if err != nil {
		log.Fatal(err)
	}
	lbMode, err := parseLB(*lbArg)
	if err != nil {
		log.Fatal(err)
	}
	cfg := paratreet.Config{
		Procs: *procs, WorkersPerProc: *wpp,
		Tree: treeType, Decomp: decompType,
		BucketSize: *bucket, LB: lbMode, LBPeriod: 3,
	}
	sim, err := paratreet.NewSimulation[gravity.CentroidData](cfg, gravity.Accumulator{}, gravity.Codec{}, ps)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	par := gravity.Params{G: 1, Theta: *theta, Soft: *soft, Quadrupole: *quad}
	start := time.Now()
	driver := paratreet.DriverFuncs[gravity.CentroidData]{
		TraversalFn: func(s *paratreet.Simulation[gravity.CentroidData], iter int) {
			s.ForEachBucket(func(_ *paratreet.Partition[gravity.CentroidData], b *paratreet.Bucket) {
				particle.ResetAcc(b.Particles)
			})
			paratreet.StartDown(s, func(p *paratreet.Partition[gravity.CentroidData]) gravity.Visitor[gravity.CentroidData] {
				return gravity.New(par)
			})
		},
		PostTraversalFn: func(s *paratreet.Simulation[gravity.CentroidData], iter int) {
			var ke, pe float64
			s.ForEachBucket(func(_ *paratreet.Partition[gravity.CentroidData], b *paratreet.Bucket) {
				if *dt > 0 {
					gravity.KickDrift(b.Particles, *dt)
				}
				ke += gravity.KineticEnergy(b.Particles)
				pe += gravity.PotentialEnergy(b.Particles)
			})
			fmt.Printf("iter %3d  E=%+.6f (K=%.6f U=%.6f)  build %v  leafshare %v\n",
				iter, ke+pe, ke, pe,
				s.LastBuildTime().Round(time.Millisecond),
				s.LeafShareTime().Round(10*time.Microsecond))
		},
	}
	if err := sim.Run(*iters, driver); err != nil {
		log.Fatal(err)
	}
	st := sim.Stats()
	fmt.Printf("total %v for %d iterations on %d procs x %d workers\n",
		time.Since(start).Round(time.Millisecond), *iters, *procs, *wpp)
	fmt.Printf("comm: %d messages, %.1f MB, %d node requests, %d fills\n",
		st.MessagesSent, float64(st.BytesSent)/1e6, st.NodeRequests, st.Fills)

	if *output != "" {
		if err := particle.WriteFile(*output, sim.Particles()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d particles to %s\n", len(sim.Particles()), *output)
	}
}

func loadOrGenerate(input, dist string, n int, seed int64) ([]particle.Particle, error) {
	if input != "" {
		return particle.ReadFile(input)
	}
	box := paratreet.Box{Max: paratreet.V(1, 1, 1)}
	switch strings.ToLower(dist) {
	case "uniform":
		return particle.NewUniform(n, seed, box), nil
	case "plummer":
		return particle.NewPlummer(n, seed, paratreet.V(0.5, 0.5, 0.5), 0.1), nil
	case "clustered":
		return particle.NewClustered(n, seed, box, 8), nil
	case "cosmo":
		return particle.NewCosmological(n, seed, box), nil
	default:
		return nil, fmt.Errorf("unknown distribution %q", dist)
	}
}

func parseTree(s string) (paratreet.TreeType, error) {
	switch strings.ToLower(s) {
	case "oct":
		return paratreet.TreeOct, nil
	case "kd":
		return paratreet.TreeKD, nil
	case "longest":
		return paratreet.TreeLongestDim, nil
	default:
		return 0, fmt.Errorf("unknown -tree %q (want oct|kd|longest)", s)
	}
}

func parseDecomp(s string) (paratreet.DecompType, error) {
	switch strings.ToLower(s) {
	case "sfc":
		return paratreet.DecompSFC, nil
	case "hilbert":
		return paratreet.DecompSFCHilbert, nil
	case "oct":
		return paratreet.DecompOct, nil
	case "orb":
		return paratreet.DecompORB, nil
	default:
		return 0, fmt.Errorf("unknown -decomp %q (want sfc|hilbert|oct|orb)", s)
	}
}

func parseLB(s string) (paratreet.LBMode, error) {
	switch strings.ToLower(s) {
	case "off":
		return paratreet.LBOff, nil
	case "sfc":
		return paratreet.LBSFC, nil
	case "spatial":
		return paratreet.LBSpatial, nil
	default:
		return 0, fmt.Errorf("unknown -lb %q (want off|sfc|spatial)", s)
	}
}
