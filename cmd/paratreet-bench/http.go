package main

import (
	"fmt"
	"net/http"
	"os"

	"paratreet/internal/experiments"
	"paratreet/internal/metrics"
	"paratreet/internal/serve"
)

// startHTTP serves live introspection while experiments run:
//
//	/debug/pprof/  net/http/pprof profiles (CPU, heap, goroutine, ...)
//	/debug/vars    expvar-style JSON, including a "paratreet" var holding
//	               the live registry's counters/histograms/spans
//	/snapshot      the live registry's snapshot as indented JSON
//
// "Live" means the registry of the most recently started simulation run;
// snapshotting it concurrently with the run is safe (counters and the
// span ring are lock-protected or sharded). Before the first run both
// endpoints report null/503.
//
// Everything is registered on an instance-scoped mux via
// serve.AttachIntrospection — nothing touches http.DefaultServeMux or the
// global expvar table, so repeated -http sessions in one process (tests,
// library embedders) cannot panic on duplicate registration.
func startHTTP(addr string, c *experiments.MetricsCollector) {
	mux := introspectionMux(c)
	//paratreet:allow(leakcheck) introspection server intentionally lives for the process lifetime
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintln(os.Stderr, "paratreet-bench: http:", err)
		}
	}()
}

// introspectionMux builds the instance-scoped handler startHTTP serves;
// split out so tests can drive the endpoints without binding a port.
func introspectionMux(c *experiments.MetricsCollector) *http.ServeMux {
	mux := http.NewServeMux()
	serve.AttachIntrospection(mux, func() *metrics.Snapshot {
		return c.Live().Snapshot()
	})
	return mux
}
