package main

import (
	"expvar"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
	"os"

	"paratreet/internal/experiments"
)

// startHTTP serves live introspection while experiments run:
//
//	/debug/pprof/  net/http/pprof profiles (CPU, heap, goroutine, ...)
//	/debug/vars    expvar, including a "paratreet" var holding the live
//	               registry's counters/histograms/spans
//	/snapshot      the live registry's snapshot as indented JSON
//
// "Live" means the registry of the most recently started simulation run;
// snapshotting it concurrently with the run is safe (counters and the
// span ring are lock-protected or sharded). Before the first run both
// endpoints report null/503.
func startHTTP(addr string, c *experiments.MetricsCollector) {
	expvar.Publish("paratreet", expvar.Func(func() any {
		return c.Live().Snapshot()
	}))
	http.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		snap := c.Live().Snapshot()
		if snap == nil {
			http.Error(w, "no run started yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := snap.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	//paratreet:allow(leakcheck) introspection server intentionally lives for the process lifetime
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "paratreet-bench: http:", err)
		}
	}()
}
