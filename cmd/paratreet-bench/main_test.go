package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paratreet"
	"paratreet/internal/experiments"
	"paratreet/internal/metrics"
	"paratreet/internal/trace"
)

// TestMetricsEmission is the end-to-end acceptance test for the --metrics
// flag path: run the fig3 cache-policy experiment exactly as main() wires
// it, then check the emitted JSON carries cache hit/miss counts,
// open/prune decisions, and per-worker utilization for every run.
func TestMetricsEmission(t *testing.T) {
	opts := experiments.Quick()
	opts.N = 3000
	opts.Iters = 1
	opts.Workers = []int{4} // two simulated procs, so remote fetches occur
	opts.Metrics = &experiments.MetricsCollector{TraceCapacity: 256}

	var out bytes.Buffer
	if err := run(&out, "fig3", opts, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig 3") {
		t.Errorf("experiment text output missing: %q", out.String())
	}

	var jbuf bytes.Buffer
	if err := writeMetricsJSON(&jbuf, opts.Metrics.Snapshots()); err != nil {
		t.Fatal(err)
	}
	var snaps []*paratreet.MetricsSnapshot
	if err := json.Unmarshal(jbuf.Bytes(), &snaps); err != nil {
		t.Fatalf("metrics output is not a JSON snapshot array: %v\n%s", err, jbuf.String())
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots collected")
	}
	for _, s := range snaps {
		if s.Label == "" || !strings.HasPrefix(s.Label, "fig3/") {
			t.Errorf("snapshot label %q, want fig3/<policy>/w<N>", s.Label)
		}
		if s.Config["cache_policy"] == "" || s.Config["particles"] == "" {
			t.Errorf("%s: config section incomplete: %+v", s.Label, s.Config)
		}
		for _, name := range []string{
			"cache.hits", "cache.misses", "cache.fetches",
			"traverse.opens", "traverse.prunes", "traverse.visits",
		} {
			if s.Counter(name) == 0 {
				t.Errorf("%s: counter %s = 0, want nonzero", s.Label, name)
			}
		}
		if len(s.Workers) == 0 {
			t.Errorf("%s: no per-worker utilization", s.Label)
		}
		var busy int64
		for _, w := range s.Workers {
			busy += w.BusyNs
			if u := w.Utilization(); u < 0 || u > 1 {
				t.Errorf("%s: p%dw%d utilization %g out of [0,1]", s.Label, w.Proc, w.Worker, u)
			}
		}
		if busy == 0 {
			t.Errorf("%s: all workers report zero busy time", s.Label)
		}
		if len(s.Spans) == 0 {
			t.Errorf("%s: tracing requested but no spans recorded", s.Label)
		}
	}
	// One snapshot per (policy, worker-count) cell: WaitFree, Sequential,
	// XWrite swept over each worker count.
	if want := 3 * len(opts.Workers); len(snaps) != want {
		t.Errorf("collected %d snapshots, want %d (3 policies x %d worker counts)",
			len(snaps), want, len(opts.Workers))
	}
}

// TestKNNTracePipeline is the end-to-end acceptance test for the
// timeline path: run the knn experiment with tracing, export the Chrome
// trace exactly as -trace-out does, and feed it to the analyzer.
func TestKNNTracePipeline(t *testing.T) {
	opts := experiments.Quick()
	opts.N = 3000
	opts.Iters = 1
	opts.Workers = []int{4}
	opts.Metrics = &experiments.MetricsCollector{TraceCapacity: 65536}

	var out bytes.Buffer
	if err := run(&out, "knn", opts, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "kNN SPH density") {
		t.Errorf("experiment text output missing: %q", out.String())
	}
	snaps := opts.Metrics.Snapshots()
	if len(snaps) != 1 || !strings.HasPrefix(snaps[0].Label, "knn/w") {
		t.Fatalf("snapshots = %d with label %q, want 1 labeled knn/w4", len(snaps), snaps[0].Label)
	}
	if len(snaps[0].Spans) == 0 {
		t.Fatal("no spans recorded")
	}

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := writeChromeTrace(path, snaps); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadChrome(f)
	if err != nil {
		t.Fatalf("exported trace does not load: %v", err)
	}
	var report bytes.Buffer
	if err := trace.WriteReport(&report, tr, trace.ReportOptions{}); err != nil {
		t.Fatalf("analyzer rejected exported trace: %v", err)
	}
	for _, section := range []string{"== gantt ==", "== phases ==", "== fetch rtt ==", "== critical path =="} {
		if !strings.Contains(report.String(), section) {
			t.Errorf("report missing %s", section)
		}
	}

	// The metrics JSON written alongside a -trace-out must not duplicate
	// the span list.
	stripped := stripSpans(snaps)
	if len(stripped[0].Spans) != 0 {
		t.Error("stripSpans left spans in the metrics snapshot")
	}
	if stripped[0].Counter("cache.hits") != snaps[0].Counter("cache.hits") {
		t.Error("stripSpans dropped counters")
	}
	if len(snaps[0].Spans) == 0 {
		t.Error("stripSpans mutated the original snapshot")
	}
}

// TestWarnDroppedSpans checks the overflow warning and its quiet path.
func TestWarnDroppedSpans(t *testing.T) {
	var buf bytes.Buffer
	snaps := []*paratreet.MetricsSnapshot{
		{Spans: make([]metrics.Span, 75), SpansDropped: 25},
	}
	warnDroppedSpans(&buf, snaps, 75)
	out := buf.String()
	if !strings.Contains(out, "dropped 25 of 100 spans (25.0%)") || !strings.Contains(out, "raise -trace") {
		t.Fatalf("warning wrong: %q", out)
	}
	buf.Reset()
	warnDroppedSpans(&buf, []*paratreet.MetricsSnapshot{{Spans: make([]metrics.Span, 5)}}, 8)
	if buf.Len() != 0 {
		t.Fatalf("warning emitted without drops: %q", buf.String())
	}
}

// TestHTTPIntrospection exercises the -http surface: /snapshot serves
// the live registry's JSON, /debug/vars carries the expvar counters, and
// /debug/pprof/ responds.
func TestHTTPIntrospection(t *testing.T) {
	c := &experiments.MetricsCollector{TraceCapacity: 16}
	// The handlers live on an instance-scoped mux (no DefaultServeMux or
	// global expvar registration), so the test serves it directly.
	srv := httptest.NewServer(introspectionMux(c))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/snapshot"); code != http.StatusServiceUnavailable {
		t.Fatalf("/snapshot before any run: %d, want 503", code)
	}

	// Simulate a run starting: the collector hands out its registry and
	// the workload bumps a counter.
	c.StartRun().Counter("cache.hits").Inc(0)

	code, body := get("/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot: %d, want 200", code)
	}
	var snap paratreet.MetricsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot is not JSON: %v\n%s", err, body)
	}
	if snap.Counter("cache.hits") != 1 {
		t.Fatalf("/snapshot counters = %+v, want cache.hits 1", snap.Counters)
	}

	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, `"paratreet"`) {
		t.Fatalf("/debug/vars: %d, paratreet var present=%v", code, strings.Contains(body, `"paratreet"`))
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %d, want 200", code)
	}
}

// TestRunUnknownExperiment checks the CLI error path.
func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "nonsense", experiments.Quick(), true); err == nil {
		t.Fatal("run(nonsense) succeeded, want error")
	}
}
