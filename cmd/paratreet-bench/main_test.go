package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"paratreet"
	"paratreet/internal/experiments"
)

// TestMetricsEmission is the end-to-end acceptance test for the --metrics
// flag path: run the fig3 cache-policy experiment exactly as main() wires
// it, then check the emitted JSON carries cache hit/miss counts,
// open/prune decisions, and per-worker utilization for every run.
func TestMetricsEmission(t *testing.T) {
	opts := experiments.Quick()
	opts.N = 3000
	opts.Iters = 1
	opts.Workers = []int{4} // two simulated procs, so remote fetches occur
	opts.Metrics = &experiments.MetricsCollector{TraceCapacity: 256}

	var out bytes.Buffer
	if err := run(&out, "fig3", opts, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig 3") {
		t.Errorf("experiment text output missing: %q", out.String())
	}

	var jbuf bytes.Buffer
	if err := writeMetricsJSON(&jbuf, opts.Metrics); err != nil {
		t.Fatal(err)
	}
	var snaps []*paratreet.MetricsSnapshot
	if err := json.Unmarshal(jbuf.Bytes(), &snaps); err != nil {
		t.Fatalf("metrics output is not a JSON snapshot array: %v\n%s", err, jbuf.String())
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots collected")
	}
	for _, s := range snaps {
		if s.Label == "" || !strings.HasPrefix(s.Label, "fig3/") {
			t.Errorf("snapshot label %q, want fig3/<policy>/w<N>", s.Label)
		}
		if s.Config["cache_policy"] == "" || s.Config["particles"] == "" {
			t.Errorf("%s: config section incomplete: %+v", s.Label, s.Config)
		}
		for _, name := range []string{
			"cache.hits", "cache.misses", "cache.fetches",
			"traverse.opens", "traverse.prunes", "traverse.visits",
		} {
			if s.Counter(name) == 0 {
				t.Errorf("%s: counter %s = 0, want nonzero", s.Label, name)
			}
		}
		if len(s.Workers) == 0 {
			t.Errorf("%s: no per-worker utilization", s.Label)
		}
		var busy int64
		for _, w := range s.Workers {
			busy += w.BusyNs
			if u := w.Utilization(); u < 0 || u > 1 {
				t.Errorf("%s: p%dw%d utilization %g out of [0,1]", s.Label, w.Proc, w.Worker, u)
			}
		}
		if busy == 0 {
			t.Errorf("%s: all workers report zero busy time", s.Label)
		}
		if len(s.Spans) == 0 {
			t.Errorf("%s: tracing requested but no spans recorded", s.Label)
		}
	}
	// One snapshot per (policy, worker-count) cell: WaitFree, Sequential,
	// XWrite swept over each worker count.
	if want := 3 * len(opts.Workers); len(snaps) != want {
		t.Errorf("collected %d snapshots, want %d (3 policies x %d worker counts)",
			len(snaps), want, len(opts.Workers))
	}
}

// TestRunUnknownExperiment checks the CLI error path.
func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "nonsense", experiments.Quick(), true); err == nil {
		t.Fatal("run(nonsense) succeeded, want error")
	}
}
