package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"paratreet"
	"paratreet/internal/benchfmt"
	"paratreet/internal/experiments"
	"paratreet/internal/gravity"
	"paratreet/internal/knn"
	"paratreet/internal/metrics"
	"paratreet/internal/particle"
	"paratreet/internal/serve"
	"paratreet/internal/sfc"
	"paratreet/internal/sph"
	"paratreet/internal/tree"
	"paratreet/internal/vec"
)

// The bench subcommand measures the repository's perf-trajectory
// benchmark set with testing.Benchmark and emits a benchfmt snapshot:
//
//	paratreet-bench bench -bench-out BENCH_head.json
//	paratreet-bench bench -bench-compare BENCH_baseline.json
//
// With -bench-compare the process exits nonzero if any benchmark
// regressed beyond -bench-tolerance against the baseline; scripts/ci.sh
// runs exactly that as its bench-gate stage.
var (
	benchOut       = flag.String("bench-out", "", "bench: write the benchfmt snapshot to this file")
	benchCompare   = flag.String("bench-compare", "", "bench: compare against this baseline snapshot and fail on regression")
	benchTolerance = flag.Float64("bench-tolerance", 0.15, "bench: fractional ns/op and allocs/op regression tolerance")
)

// benchResult pairs a testing measurement with the phase split pulled
// from the simulation's metrics layer (zero for non-simulation benches).
type benchResult struct {
	r          testing.BenchmarkResult
	buildNs    float64
	traverseNs float64
	p50Ns      float64
	p99Ns      float64
}

func (b benchResult) toResult(name string) benchfmt.Result {
	return benchfmt.Result{
		Name:            name,
		N:               b.r.N,
		NsPerOp:         float64(b.r.T.Nanoseconds()) / float64(b.r.N),
		AllocsPerOp:     b.r.AllocsPerOp(),
		BytesPerOp:      b.r.AllocedBytesPerOp(),
		BuildNsPerOp:    b.buildNs,
		TraverseNsPerOp: b.traverseNs,
		P50Ns:           b.p50Ns,
		P99Ns:           b.p99Ns,
	}
}

// runBenchSuite executes the benchmark set and handles snapshot output
// and the baseline comparison. quick shrinks every workload to smoke
// scale (and stamps the snapshot's workload name accordingly, since
// ns/op baselines are only comparable at like scale). The whole suite is
// a timing harness — clock reads and formatting are its job, so it is
// marked cold to stop any future hotpath propagation into it.
//
//paratreet:coldpath
func runBenchSuite(w io.Writer, seed int64, quick bool) error {
	nBuild, nSim := 100000, 20000
	if quick {
		nBuild, nSim = 20000, 5000
	}

	type namedBench struct {
		name string
		run  func() (benchResult, error)
	}
	parWorkers := 4
	benches := []namedBench{
		{"treebuild/oct/serial", func() (benchResult, error) { return benchTreeBuild(nBuild, seed, 1), nil }},
		{fmt.Sprintf("treebuild/oct/w=%d", parWorkers), func() (benchResult, error) { return benchTreeBuild(nBuild, seed, parWorkers), nil }},
		{"radixsort", func() (benchResult, error) { return benchRadixSort(nBuild, seed), nil }},
		{"incbuild/scratch", func() (benchResult, error) { return benchIncBuild(nBuild, seed, false) }},
		{"incbuild/inc", func() (benchResult, error) { return benchIncBuild(nBuild, seed, true) }},
		{"gravity/iter", func() (benchResult, error) { return benchGravityIter(nSim, seed) }},
		{"knn/iter", func() (benchResult, error) { return benchKNNIter(nSim, seed) }},
		{"serve/query", func() (benchResult, error) { return benchServeQuery(nSim, seed) }},
	}

	workload := "bench-gate"
	if quick {
		workload = "bench-gate-quick"
	}
	// Load the baseline before measuring anything: an unreadable or
	// corrupt baseline should fail in milliseconds, not after the suite.
	var base *benchfmt.Snapshot
	if *benchCompare != "" {
		f, err := os.Open(*benchCompare)
		if err != nil {
			return err
		}
		base, err = benchfmt.Read(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	snap := &benchfmt.Snapshot{
		GitSHA:   gitSHA(),
		Workload: workload,
		GoOS:     runtime.GOOS,
		GoArch:   runtime.GOARCH,
		NumCPU:   runtime.NumCPU(),
	}
	fmt.Fprintf(w, "perf snapshot: workload=%s sha=%s cpus=%d\n", workload, snap.GitSHA, snap.NumCPU)
	for _, nb := range benches {
		// Repeat each measurement and keep the fastest: min ns/op is the
		// standard low-noise estimator (interference only ever adds time),
		// which keeps the ±15% gate meaningful on a shared machine.
		const reps = 5
		var best benchfmt.Result
		for rep := 0; rep < reps; rep++ {
			br, err := nb.run()
			if err != nil {
				return fmt.Errorf("bench %s: %w", nb.name, err)
			}
			res := br.toResult(nb.name)
			if rep == 0 || res.NsPerOp < best.NsPerOp {
				best = res
			}
		}
		res := best
		snap.Results = append(snap.Results, res)
		fmt.Fprintf(w, "  %-24s %12.0f ns/op %8d allocs/op", res.Name, res.NsPerOp, res.AllocsPerOp)
		if res.BuildNsPerOp > 0 || res.TraverseNsPerOp > 0 {
			fmt.Fprintf(w, "   build %.0f ns/op, traverse %.0f ns/op", res.BuildNsPerOp, res.TraverseNsPerOp)
		}
		if res.P50Ns > 0 || res.P99Ns > 0 {
			fmt.Fprintf(w, "   request p50 %.0f ns, p99 %.0f ns", res.P50Ns, res.P99Ns)
		}
		fmt.Fprintln(w)
	}

	if *benchOut != "" {
		f, err := os.Create(*benchOut)
		if err != nil {
			return err
		}
		if err := benchfmt.Write(f, snap); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *benchOut)
	}

	if base != nil {
		if base.Workload != snap.Workload {
			fmt.Fprintf(w, "warning: baseline workload %q differs from current %q; ns/op comparison is not meaningful\n",
				base.Workload, snap.Workload)
		}
		regs := benchfmt.Compare(base, snap, *benchTolerance)
		if len(regs) == 0 {
			fmt.Fprintf(w, "bench-gate: no regressions beyond %.0f%% vs %s\n", *benchTolerance*100, *benchCompare)
			return nil
		}
		for _, r := range regs {
			fmt.Fprintln(w, "bench-gate:", r)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%% vs %s", len(regs), *benchTolerance*100, *benchCompare)
	}
	return nil
}

// benchTreeBuild measures the full standalone build pipeline — key
// assignment, sort, node construction, Data accumulation — serial
// (workers<=1) or via the Cornerstone-style parallel path.
//
//paratreet:coldpath
func benchTreeBuild(n int, seed int64, workers int) benchResult {
	box := vec.NewBox(vec.V(0, 0, 0), vec.V(1, 1, 1))
	pristine := particle.NewClustered(n, seed, box, 8)
	universe := particle.BoundingBox(pristine).Pad(1e-9).Cubed()
	scratch := make([]particle.Particle, n)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(scratch, pristine)
			b.StartTimer()
			cfg := tree.BuildConfig{Type: tree.Octree, BucketSize: 16, Workers: workers, MortonOrdered: workers > 1}
			if workers > 1 {
				tree.AssignKeysParallel(scratch, universe, sfc.MortonKey, workers)
			} else {
				tree.AssignKeys(scratch, universe, sfc.MortonKey)
			}
			root := tree.Build[gravity.CentroidData](scratch, universe, tree.RootKey, 0, cfg)
			tree.AccumulateParallel(root, gravity.Accumulator{}, workers)
		}
	})
	return benchResult{r: r}
}

// benchRadixSort measures the parallel LSD radix sort alone, re-keying a
// fresh copy of the cloud each iteration outside the timer.
//
//paratreet:coldpath
func benchRadixSort(n int, seed int64) benchResult {
	box := vec.NewBox(vec.V(0, 0, 0), vec.V(1, 1, 1))
	pristine := particle.NewUniform(n, seed, box)
	universe := particle.BoundingBox(pristine).Pad(1e-9).Cubed()
	for i := range pristine {
		pristine[i].Key = sfc.MortonKey(pristine[i].Pos, universe)
	}
	scratch := make([]particle.Particle, n)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(scratch, pristine)
			b.StartTimer()
			particle.RadixSortByKey(scratch, runtime.GOMAXPROCS(0))
		}
	})
	return benchResult{r: r}
}

// benchIncParticles builds the incremental-build workload: a clustered
// cloud clamped inside 8 corner-anchor particles, so the tiny per-step
// drift below never changes the global bounding box (a box change would
// force the incremental path back to scratch).
//
//paratreet:coldpath
func benchIncParticles(n int, seed int64) []particle.Particle {
	ps := particle.NewClustered(n-8, seed, vec.UnitBox(), 8)
	for i := range ps {
		ps[i].Pos = vec.V(driftClamp(ps[i].Pos.X), driftClamp(ps[i].Pos.Y), driftClamp(ps[i].Pos.Z))
	}
	id := int64(len(ps))
	for cx := 0; cx <= 1; cx++ {
		for cy := 0; cy <= 1; cy++ {
			for cz := 0; cz <= 1; cz++ {
				ps = append(ps, particle.Particle{ID: id, Pos: vec.V(float64(cx), float64(cy), float64(cz)), Mass: 1e-12})
				id++
			}
		}
	}
	return ps
}

// driftClamp keeps a drifted coordinate strictly inside the corner
// anchors.
func driftClamp(x float64) float64 {
	if x < 0.01 {
		return 0.01
	}
	if x > 0.99 {
		return 0.99
	}
	return x
}

// benchIncBuild measures one timestep of the rebuild loop on a
// ~1%-movers workload: nudge 1% of the interior particles, then
// BuildIteration. With incremental=false every op is a from-scratch
// build; with incremental=true every op after the warmup patches the
// resident trees along dirty paths. The incbuild/scratch :
// incbuild/inc ns/op ratio is the incremental speedup the perf
// trajectory tracks.
//
//paratreet:coldpath
func benchIncBuild(n int, seed int64, incremental bool) (benchResult, error) {
	movers := n / 100
	sim, err := paratreet.NewSimulation[gravity.CentroidData](paratreet.Config{
		Procs: 2, WorkersPerProc: 2, BuildWorkers: 2,
		Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC,
		BucketSize: 16, FetchDepth: 3,
		Incremental: incremental,
	}, gravity.Accumulator{}, gravity.Codec{}, benchIncParticles(n, seed))
	if err != nil {
		return benchResult{}, err
	}
	defer sim.Close()
	if err := sim.BuildOnly(); err != nil { // warmup: the first build is always scratch
		return benchResult{}, err
	}
	var out benchResult
	var benchErr error
	interior := n - 8
	step := int64(0)
	out.r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ps := sim.Particles()
			rng := rand.New(rand.NewSource(seed + step))
			step++
			for m := 0; m < movers; m++ {
				j := rng.Intn(interior)
				ps[j].Pos.X = driftClamp(ps[j].Pos.X + (rng.Float64()-0.5)*0.02)
				ps[j].Pos.Y = driftClamp(ps[j].Pos.Y + (rng.Float64()-0.5)*0.02)
				ps[j].Pos.Z = driftClamp(ps[j].Pos.Z + (rng.Float64()-0.5)*0.02)
			}
			b.StartTimer()
			if err := sim.BuildOnly(); err != nil {
				benchErr = err
				b.SkipNow()
			}
		}
	})
	if benchErr != nil {
		return out, benchErr
	}
	if incremental {
		if st := sim.BuildStats(); st.Mode != "incremental" {
			return out, fmt.Errorf("incbuild/inc fell back to %q (%s); the measurement is meaningless", st.Mode, st.FallbackReason)
		}
	}
	return out, nil
}

// benchGravityIter measures one Barnes-Hut iteration end to end on the
// simulated machine and splits out per-op build and traverse time from
// the runtime's phase timers.
func benchGravityIter(n int, seed int64) (benchResult, error) {
	box := vec.NewBox(vec.V(0, 0, 0), vec.V(1, 1, 1))
	par := gravity.Params{G: 1, Theta: 0.6, Soft: 1e-4}
	driver := paratreet.DriverFuncs[gravity.CentroidData]{
		TraversalFn: func(s *paratreet.Simulation[gravity.CentroidData], iter int) {
			s.ForEachBucket(func(_ *paratreet.Partition[gravity.CentroidData], b *paratreet.Bucket) {
				particle.ResetAcc(b.Particles)
			})
			paratreet.StartDown(s, func(p *paratreet.Partition[gravity.CentroidData]) gravity.Visitor[gravity.CentroidData] {
				return gravity.New(par)
			})
		},
	}
	return benchSim(func() (*paratreet.Simulation[gravity.CentroidData], error) {
		ps := particle.NewClustered(n, seed, box, 8)
		return paratreet.NewSimulation[gravity.CentroidData](paratreet.Config{
			Procs: 2, WorkersPerProc: 2, BuildWorkers: 2,
			Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC,
			BucketSize: 16, FetchDepth: 3,
			Latency: 20 * time.Microsecond, PerByte: 2 * time.Nanosecond,
		}, gravity.Accumulator{}, gravity.Codec{}, ps)
	}, driver)
}

// benchKNNIter measures one kNN (SPH density) up-and-down iteration.
func benchKNNIter(n int, seed int64) (benchResult, error) {
	const k = 24
	driver := paratreet.DriverFuncs[knn.Data]{
		TraversalFn: func(s *paratreet.Simulation[knn.Data], iter int) {
			for _, p := range s.Partitions() {
				knn.Attach(p.Buckets(), k)
			}
			paratreet.StartUpAndDown(s, func(p *paratreet.Partition[knn.Data]) knn.Visitor {
				return knn.Visitor{K: k, ExcludeSelf: true}
			})
		},
		PostTraversalFn: func(s *paratreet.Simulation[knn.Data], iter int) {
			spar := sph.Params{K: k, Gamma: 5.0 / 3.0, U: 1}
			s.ForEachBucket(func(_ *paratreet.Partition[knn.Data], b *paratreet.Bucket) {
				st := b.State.(*knn.State)
				for i := range b.Particles {
					sph.DensityFromNeighbors(&b.Particles[i], st.Neighbors(i))
					sph.Pressure(&b.Particles[i], spar)
				}
			})
		},
	}
	return benchSim(func() (*paratreet.Simulation[knn.Data], error) {
		ps := particle.NewCosmological(n, seed, vec.UnitBox())
		return paratreet.NewSimulation[knn.Data](paratreet.Config{
			Procs: 2, WorkersPerProc: 2, BuildWorkers: 2,
			Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC, BucketSize: 16,
			Latency: 20 * time.Microsecond, PerByte: 2 * time.Nanosecond,
		}, knn.Accumulator{}, knn.Codec{}, ps)
	}, driver)
}

// benchServeQuery measures the serving path: a reproducible mixed query
// set answered through the wave batcher against a resident tree, with
// concurrent submitters the way the HTTP server drives the engine. Each
// op is one full query-set replay; the per-request p50/p99 come from the
// serve.request_ns streaming sketch, giving the perf trajectory a tail
// latency signal on top of mean throughput.
//
//paratreet:coldpath
func benchServeQuery(n int, seed int64) (benchResult, error) {
	const nq, conc = 256, 8
	box := vec.UnitBox()
	reg := paratreet.NewMetricsRegistry(paratreet.MetricsOptions{})
	cfg := paratreet.Config{
		Procs: 2, WorkersPerProc: 2, BuildWorkers: 2,
		Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC, BucketSize: 16,
		CachePolicy: paratreet.CacheWaitFree, FetchDepth: 3,
		Metrics: reg,
	}
	eng, err := serve.NewEngine(cfg, particle.NewClustered(n, seed, box, 8))
	if err != nil {
		return benchResult{}, err
	}
	defer eng.Close()
	qs := experiments.NewQuerySet(nq, seed+1, box, 16, 0.05)
	bcfg := serve.BatchConfig{MaxBatch: 32, MaxWait: 200 * time.Microsecond, Registry: reg}
	var out benchResult
	var benchErr error
	out.r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunBatched(eng, bcfg, qs, conc); err != nil {
				benchErr = err
				b.SkipNow()
			}
		}
	})
	if snap := reg.Snapshot(); snap != nil {
		if sk, ok := snap.Sketches[metrics.HServeRequest]; ok {
			out.p50Ns, out.p99Ns = float64(sk.P50), float64(sk.P99)
		}
	}
	return out, benchErr
}

// benchSim benchmarks whole simulation iterations: per testing round it
// constructs a fresh simulation off the clock, warms up one iteration,
// then times b.N iterations, attributing build and traverse phase time
// from the machine's phase timers.
func benchSim[D any](newSim func() (*paratreet.Simulation[D], error), driver paratreet.Driver[D]) (benchResult, error) {
	var out benchResult
	var benchErr error
	out.r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.StopTimer()
		sim, err := newSim()
		if err != nil {
			benchErr = err
			b.SkipNow()
		}
		defer sim.Close()
		if err := sim.Run(1, driver); err != nil { // warmup
			benchErr = err
			b.SkipNow()
		}
		sim.ResetStats()
		before := sim.PhaseTotals()
		b.StartTimer()
		if err := sim.Run(b.N, driver); err != nil {
			benchErr = err
			b.SkipNow()
		}
		b.StopTimer()
		after := sim.PhaseTotals()
		build := (after[paratreet.PhaseTreeBuild] - before[paratreet.PhaseTreeBuild]) +
			(after[paratreet.PhaseTopShare] - before[paratreet.PhaseTopShare]) +
			(after[paratreet.PhaseLeafShare] - before[paratreet.PhaseLeafShare])
		traverse := (after[paratreet.PhaseLocalTraversal] - before[paratreet.PhaseLocalTraversal]) +
			(after[paratreet.PhaseResume] - before[paratreet.PhaseResume])
		out.buildNs = float64(build.Nanoseconds()) / float64(b.N)
		out.traverseNs = float64(traverse.Nanoseconds()) / float64(b.N)
	})
	return out, benchErr
}

// gitSHA returns the current commit, or "unknown" outside a git checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
