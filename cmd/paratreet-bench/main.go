// Command paratreet-bench regenerates the paper's evaluation tables and
// figures at laptop scale. Each subcommand prints a text rendering of one
// experiment; see EXPERIMENTS.md for paper-vs-measured commentary.
//
// Usage:
//
//	paratreet-bench [flags] <experiment>
//
// Experiments: fig3 fig9 fig10 fig11 fig12 fig13 table1 table2 table3 lb
// fetchdepth style all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"paratreet/internal/experiments"
)

func main() {
	var (
		n       = flag.Int("n", 0, "particle count (0 = experiment default)")
		iters   = flag.Int("iters", 0, "measured iterations (0 = default)")
		workers = flag.String("workers", "", "comma-separated worker sweep, e.g. 1,2,4,8")
		wpp     = flag.Int("wpp", 0, "workers per simulated process (0 = default)")
		quick   = flag.Bool("quick", false, "fast smoke-test scale")
		seed    = flag.Int64("seed", 42, "dataset seed")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <experiment>\n", os.Args[0])
		fmt.Fprintln(os.Stderr, "experiments: fig3 fig9 fig10 fig11 fig12 fig13 table1 table2 table3 lb fetchdepth sharedepth style all")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	opts := experiments.Defaults()
	if *quick {
		opts = experiments.Quick()
	}
	if *n > 0 {
		opts.N = *n
	}
	if *iters > 0 {
		opts.Iters = *iters
	}
	if *wpp > 0 {
		opts.WorkersPerProc = *wpp
	}
	opts.Seed = *seed
	if *workers != "" {
		opts.Workers = nil
		for _, tok := range strings.Split(*workers, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v <= 0 {
				fatal(fmt.Errorf("bad -workers value %q", tok))
			}
			opts.Workers = append(opts.Workers, v)
		}
	}

	name := flag.Arg(0)
	if name == "all" {
		for _, exp := range []string{"table1", "fig3", "fig9", "fig10", "fig11", "fig12", "fig13", "table2", "table3", "lb", "fetchdepth", "sharedepth", "style"} {
			run(exp, opts, *quick)
			fmt.Println()
		}
		return
	}
	run(name, opts, *quick)
}

func run(name string, opts experiments.Options, quick bool) {
	switch name {
	case "table1":
		fmt.Print(experiments.RunTable1())
	case "fig3":
		print1(experiments.RunFig3(opts))
	case "fig9":
		print1(experiments.RunFig9(opts))
	case "fig10":
		print1(experiments.RunFig10(opts))
	case "fig11":
		print1(experiments.RunFig11(opts))
	case "fig12":
		dopts := experiments.DefaultDiskOptions()
		dopts.Seed = opts.Seed
		if quick {
			dopts.N, dopts.Steps = 4000, 15
		}
		res, err := experiments.RunFig12(dopts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
	case "fig13":
		fopts := opts
		if fopts.N > 20000 {
			fopts.N = 20000
		}
		print1(experiments.RunFig13(fopts))
	case "table2":
		n := 100000
		cpus := []int{1, 2, 4, 8, 16}
		if quick {
			n, cpus = 10000, []int{1, 4}
		}
		rows, err := experiments.RunTable2(n, cpus, max(1, opts.Iters-1), opts.Seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatTable2(rows))
	case "table3":
		root, err := repoRoot()
		if err != nil {
			fatal(err)
		}
		out, err := experiments.RunTable3(root)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case "lb":
		print1(experiments.RunLBAblation(opts))
	case "fetchdepth":
		print1(experiments.RunFetchDepthAblation(opts, []int{1, 2, 3, 5, 8}))
	case "sharedepth":
		print1(experiments.RunShareDepthAblation(opts, []int{0, 1, 2, 4}))
	case "style":
		print1(experiments.RunStyleComparison(opts))
	default:
		fatal(fmt.Errorf("unknown experiment %q", name))
	}
}

func print1(res *experiments.Result, err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Format())
}

// repoRoot finds the module root by walking up from the working directory
// to the first go.mod.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	return "", fmt.Errorf("go.mod not found above working directory")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paratreet-bench:", err)
	os.Exit(1)
}
