// Command paratreet-bench regenerates the paper's evaluation tables and
// figures at laptop scale. Each subcommand prints a text rendering of one
// experiment; see EXPERIMENTS.md for paper-vs-measured commentary.
//
// Usage:
//
//	paratreet-bench [flags] <experiment>
//	paratreet-bench <experiment> [flags]
//
// Experiments: fig3 fig9 fig10 fig11 fig12 fig13 table1 table2 table3 lb
// fetchdepth sharedepth style knn serve incremental all
//
// The extra "bench" subcommand runs the perf-trajectory benchmark set and
// emits/compares benchfmt snapshots (see -bench-out, -bench-compare,
// -bench-tolerance); scripts/ci.sh uses it as the bench-gate stage.
//
// Observability: -metrics collects per-run snapshots, -trace N adds span
// tracing, -trace-out exports a Chrome Trace Event file for Perfetto and
// the paratreet-trace analyzer, and -http serves live pprof/expvar/
// snapshot endpoints while experiments run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"paratreet"
	"paratreet/internal/experiments"
	"paratreet/internal/trace"
)

func main() {
	var (
		n          = flag.Int("n", 0, "particle count (0 = experiment default)")
		iters      = flag.Int("iters", 0, "measured iterations (0 = default)")
		workers    = flag.String("workers", "", "comma-separated worker sweep, e.g. 1,2,4,8")
		wpp        = flag.Int("wpp", 0, "workers per simulated process (0 = default)")
		quick      = flag.Bool("quick", false, "fast smoke-test scale")
		seed       = flag.Int64("seed", 42, "dataset seed")
		useMetrics = flag.Bool("metrics", false, "collect observability snapshots and emit them as JSON")
		metricsOut = flag.String("metrics-out", "-", "metrics JSON destination: - for stdout, or a file path")
		traceCap   = flag.Int("trace", 0, "trace-span ring capacity per run (0 = tracing off; implies -metrics)")
		traceOut   = flag.String("trace-out", "", "write spans as Chrome Trace Event JSON to this file (implies -trace 65536 when -trace is unset); spans are then omitted from the metrics JSON")
		httpAddr   = flag.String("http", "", "serve live pprof/expvar introspection and /snapshot on this address, e.g. :6060 (implies -metrics)")
		faults     = flag.String("faults", "", "inject delivery faults, e.g. drop=0.02,dup=0.02,jitter=200us,pause=1ms,pauseprob=0.01,seed=7 (results are unchanged; timings and retry counters are not)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <experiment>  (the experiment may also come first)\n", os.Args[0])
		fmt.Fprintln(os.Stderr, "experiments: fig3 fig9 fig10 fig11 fig12 fig13 table1 table2 table3 lb fetchdepth sharedepth style knn serve incremental all bench")
		flag.PrintDefaults()
	}
	// Go's flag package stops parsing at the first non-flag argument, so
	// "paratreet-bench knn -quick" would silently ignore -quick. Accept
	// the subcommand in front by rotating it behind the flags.
	if len(os.Args) > 2 && !strings.HasPrefix(os.Args[1], "-") {
		rotated := make([]string, 0, len(os.Args))
		rotated = append(rotated, os.Args[0])
		rotated = append(rotated, os.Args[2:]...)
		rotated = append(rotated, os.Args[1])
		os.Args = rotated
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	opts := experiments.Defaults()
	if *quick {
		opts = experiments.Quick()
	}
	if *n > 0 {
		opts.N = *n
	}
	if *iters > 0 {
		opts.Iters = *iters
	}
	if *wpp > 0 {
		opts.WorkersPerProc = *wpp
	}
	opts.Seed = *seed
	if *workers != "" {
		opts.Workers = nil
		for _, tok := range strings.Split(*workers, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v <= 0 {
				fatal(fmt.Errorf("bad -workers value %q", tok))
			}
			opts.Workers = append(opts.Workers, v)
		}
	}
	if *faults != "" {
		fc, err := paratreet.ParseFaultSpec(*faults)
		if err != nil {
			fatal(err)
		}
		opts.Faults = fc
	}
	if *traceOut != "" && *traceCap == 0 {
		*traceCap = 65536
	}
	if *useMetrics || *traceCap > 0 || *httpAddr != "" {
		opts.Metrics = &experiments.MetricsCollector{TraceCapacity: *traceCap}
	}
	if *httpAddr != "" {
		startHTTP(*httpAddr, opts.Metrics)
	}

	name := flag.Arg(0)
	if name == "bench" {
		if err := runBenchSuite(os.Stdout, *seed, *quick); err != nil {
			fatal(err)
		}
		return
	}
	if name == "all" {
		for _, exp := range []string{"table1", "fig3", "fig9", "fig10", "fig11", "fig12", "fig13", "table2", "table3", "lb", "fetchdepth", "sharedepth", "style"} {
			if err := run(os.Stdout, exp, opts, *quick); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	} else if err := run(os.Stdout, name, opts, *quick); err != nil {
		fatal(err)
	}

	if opts.Metrics != nil {
		snaps := opts.Metrics.Snapshots()
		warnDroppedSpans(os.Stderr, snaps, *traceCap)
		writeHistogramTails(os.Stderr, snaps)
		if *traceOut != "" {
			if err := writeChromeTrace(*traceOut, snaps); err != nil {
				fatal(err)
			}
			snaps = stripSpans(snaps)
		}
		if err := emitMetrics(os.Stdout, *metricsOut, snaps); err != nil {
			fatal(err)
		}
	}
}

// run executes one named experiment and writes its text rendering to w.
func run(w io.Writer, name string, opts experiments.Options, quick bool) error {
	var res *experiments.Result
	var err error
	switch name {
	case "table1":
		fmt.Fprint(w, experiments.RunTable1())
		return nil
	case "fig3":
		res, err = experiments.RunFig3(opts)
	case "fig9":
		res, err = experiments.RunFig9(opts)
	case "fig10":
		res, err = experiments.RunFig10(opts)
	case "fig11":
		res, err = experiments.RunFig11(opts)
	case "fig12":
		dopts := experiments.DefaultDiskOptions()
		dopts.Seed = opts.Seed
		if quick {
			dopts.N, dopts.Steps = 4000, 15
		}
		dres, err := experiments.RunFig12(dopts)
		if err != nil {
			return err
		}
		fmt.Fprint(w, dres.Format())
		return nil
	case "fig13":
		fopts := opts
		if fopts.N > 20000 {
			fopts.N = 20000
		}
		res, err = experiments.RunFig13(fopts)
	case "table2":
		n := 100000
		cpus := []int{1, 2, 4, 8, 16}
		if quick {
			n, cpus = 10000, []int{1, 4}
		}
		rows, err := experiments.RunTable2(n, cpus, max(1, opts.Iters-1), opts.Seed)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatTable2(rows))
		return nil
	case "table3":
		root, err := repoRoot()
		if err != nil {
			return err
		}
		out, err := experiments.RunTable3(root)
		if err != nil {
			return err
		}
		fmt.Fprint(w, out)
		return nil
	case "lb":
		res, err = experiments.RunLBAblation(opts)
	case "fetchdepth":
		res, err = experiments.RunFetchDepthAblation(opts, []int{1, 2, 3, 5, 8})
	case "sharedepth":
		res, err = experiments.RunShareDepthAblation(opts, []int{0, 1, 2, 4})
	case "style":
		res, err = experiments.RunStyleComparison(opts)
	case "knn":
		res, err = experiments.RunKNN(opts)
	case "serve":
		res, err = experiments.RunServe(opts)
	case "incremental":
		res, err = experiments.RunIncremental(opts)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	if err != nil {
		return err
	}
	fmt.Fprint(w, res.Format())
	return nil
}

// emitMetrics writes the collected snapshots as an indented JSON array to
// stdout (dest "-") or to the named file.
func emitMetrics(stdout io.Writer, dest string, snaps []*paratreet.MetricsSnapshot) error {
	w := stdout
	if dest != "-" && dest != "" {
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeMetricsJSON(w, snaps)
}

func writeMetricsJSON(w io.Writer, snaps []*paratreet.MetricsSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snaps)
}

// writeChromeTrace exports the snapshots' spans as a Chrome Trace Event
// file for Perfetto / chrome://tracing / paratreet-trace.
func writeChromeTrace(dest string, snaps []*paratreet.MetricsSnapshot) error {
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, snaps); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// stripSpans shallow-copies the snapshots without their span lists, so
// the metrics JSON does not duplicate a trace already written by
// -trace-out (SpansDropped is kept for loss accounting).
func stripSpans(snaps []*paratreet.MetricsSnapshot) []*paratreet.MetricsSnapshot {
	out := make([]*paratreet.MetricsSnapshot, len(snaps))
	for i, s := range snaps {
		if s == nil {
			continue
		}
		cp := *s
		cp.Spans = nil
		out[i] = &cp
	}
	return out
}

// writeHistogramTails prints per-run histogram tail quantiles to stderr
// when -metrics is on: bucket-interpolated p50/p90/p99 of every recorded
// latency histogram (HistogramSnapshot.Quantile), a human-readable tail
// summary next to the machine-readable JSON the run emits.
func writeHistogramTails(w io.Writer, snaps []*paratreet.MetricsSnapshot) {
	for run, s := range snaps {
		if s == nil || len(s.Histograms) == 0 {
			continue
		}
		names := make([]string, 0, len(s.Histograms))
		for name := range s.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "histogram tails (run %d):\n", run)
		fmt.Fprintf(w, "  %-24s %10s %12s %12s %12s\n", "histogram", "count", "p50", "p90", "p99")
		for _, name := range names {
			h := s.Histograms[name]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-24s %10d %12.0f %12.0f %12.0f\n",
				name, h.Count, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
		}
	}
}

// warnDroppedSpans reports trace-ring overflow on stderr: a wrapped ring
// silently truncates the timeline's beginning, which would otherwise
// masquerade as a short run in the analyzer.
func warnDroppedSpans(w io.Writer, snaps []*paratreet.MetricsSnapshot, traceCap int) {
	var dropped, total int64
	for _, s := range snaps {
		if s == nil {
			continue
		}
		dropped += s.SpansDropped
		total += s.SpansDropped + int64(len(s.Spans))
	}
	if dropped > 0 {
		fmt.Fprintf(w, "paratreet-bench: trace ring dropped %d of %d spans (%.1f%%); raise -trace above %d\n",
			dropped, total, 100*float64(dropped)/float64(total), traceCap)
	}
}

// repoRoot finds the module root by walking up from the working directory
// to the first go.mod.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	return "", fmt.Errorf("go.mod not found above working directory")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paratreet-bench:", err)
	os.Exit(1)
}
