// Command sph runs smoothed-particle hydrodynamics density + pressure
// iterations over a generated or loaded dataset, with a choice between
// ParaTreeT's k-nearest-neighbors algorithm and the Gadget-2-style
// ball-iteration baseline (the Fig 11 comparison).
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"paratreet"
	"paratreet/internal/baseline/gadget"
	"paratreet/internal/knn"
	"paratreet/internal/particle"
	"paratreet/internal/sph"
)

func main() {
	var (
		input  = flag.String("i", "", "input dataset (native format); empty generates a cosmological volume")
		n      = flag.Int("n", 50000, "particles to generate when -i is empty")
		k      = flag.Int("k", 32, "target neighbor count")
		iters  = flag.Int("iters", 3, "iterations")
		algo   = flag.String("algo", "knn", "density algorithm: knn|gadget")
		procs  = flag.Int("procs", 4, "simulated processes")
		wpp    = flag.Int("wpp", 2, "workers per process")
		bucket = flag.Int("bucket", 16, "bucket size")
		seed   = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	var ps []particle.Particle
	var err error
	if *input != "" {
		ps, err = particle.ReadFile(*input)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		ps = particle.NewCosmological(*n, *seed, paratreet.Box{Max: paratreet.V(1, 1, 1)})
	}

	par := sph.Params{K: *k, Gamma: 5.0 / 3.0, U: 1}
	var cfg paratreet.Config
	var driver paratreet.Driver[knn.Data]
	switch *algo {
	case "gadget":
		cfg = gadget.Config((*procs)*(*wpp), *bucket)
		driver = gadget.Driver(par, 2, 30, 0.05)
	case "knn":
		cfg = paratreet.Config{
			Procs: *procs, WorkersPerProc: *wpp,
			Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC, BucketSize: *bucket,
		}
		driver = paratreet.DriverFuncs[knn.Data]{
			TraversalFn: func(s *paratreet.Simulation[knn.Data], iter int) {
				for _, p := range s.Partitions() {
					knn.Attach(p.Buckets(), par.K)
				}
				paratreet.StartUpAndDown(s, func(p *paratreet.Partition[knn.Data]) knn.Visitor {
					return knn.Visitor{K: par.K, ExcludeSelf: true}
				})
			},
			PostTraversalFn: func(s *paratreet.Simulation[knn.Data], iter int) {
				s.ForEachBucket(func(_ *paratreet.Partition[knn.Data], b *paratreet.Bucket) {
					st := b.State.(*knn.State)
					for i := range b.Particles {
						sph.DensityFromNeighbors(&b.Particles[i], st.Neighbors(i))
						sph.Pressure(&b.Particles[i], par)
					}
				})
			},
		}
	default:
		log.Fatalf("unknown -algo %q (want knn or gadget)", *algo)
	}

	sim, err := paratreet.NewSimulation[knn.Data](cfg, knn.Accumulator{}, knn.Codec{}, ps)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	start := time.Now()
	if err := sim.Run(*iters, driver); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	var rhos []float64
	for _, p := range sim.Particles() {
		if p.Density > 0 {
			rhos = append(rhos, p.Density)
		}
	}
	sort.Float64s(rhos)
	fmt.Printf("algo=%s  n=%d  k=%d  iters=%d\n", *algo, len(sim.Particles()), *k, *iters)
	if len(rhos) > 0 {
		fmt.Printf("density median %.4g  p99/p10 %.1fx\n",
			rhos[len(rhos)/2], rhos[int(0.99*float64(len(rhos)-1))]/rhos[int(0.10*float64(len(rhos)-1))])
	}
	fmt.Printf("mean iteration %v (total %v)\n",
		(elapsed / time.Duration(*iters)).Round(time.Millisecond), elapsed.Round(time.Millisecond))
}
