// Command paratreet-lint runs the internal/analysis analyzers over a set of
// package patterns and reports diagnostics in a stable file:line:col order.
//
// Usage:
//
//	paratreet-lint [-json] [-analyzer name[,name...]] [-list] [patterns...]
//
// Patterns follow the usual go tool shape ("./...", "./internal/cache");
// with no patterns, "./..." is assumed. The exit status is 0 when no
// diagnostics are found, 1 when findings are reported, and 2 on usage or
// load errors — so CI can distinguish "dirty tree" from "broken tool".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"paratreet/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("paratreet-lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	names := fs.String("analyzer", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: paratreet-lint [-json] [-analyzer name[,name...]] [-list] [patterns...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.Analyzers()
	if *names != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*names, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "paratreet-lint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "paratreet-lint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paratreet-lint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paratreet-lint: %v\n", err)
		return 2
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paratreet-lint: %v\n", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "paratreet-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}

	if len(diags) > 0 {
		return 1
	}
	return 0
}
