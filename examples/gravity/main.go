// Barnes-Hut gravity as ParaTreeT user code — the Go analogue of the
// paper's Figs 6-8, which total 135 lines in C++. Everything an N-body
// gravity code needs is below: CentroidData (the Data abstraction), a
// GravityVisitor (the Visitor abstraction), and a Driver that launches the
// traversal and integrates; the framework supplies decomposition, tree
// build, caching of remote data, and parallel traversal.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"

	"paratreet"
	"paratreet/internal/particle"
)

// CentroidData mirrors Fig 6: a mass moment accumulated leaves-to-root.
type CentroidData struct {
	Moment paratreet.Vec3
	Mass   float64
}

func (d CentroidData) Centroid() paratreet.Vec3 {
	if d.Mass == 0 {
		return paratreet.Vec3{}
	}
	return d.Moment.Scale(1 / d.Mass)
}

type CentroidAcc struct{}

func (CentroidAcc) FromLeaf(ps []paratreet.Particle, _ paratreet.Box) CentroidData {
	var d CentroidData
	for i := range ps {
		d.Moment = d.Moment.Add(ps[i].Pos.Scale(ps[i].Mass))
		d.Mass += ps[i].Mass
	}
	return d
}
func (CentroidAcc) Empty() CentroidData { return CentroidData{} }
func (CentroidAcc) Add(a, b CentroidData) CentroidData {
	return CentroidData{Moment: a.Moment.Add(b.Moment), Mass: a.Mass + b.Mass}
}

type CentroidCodec struct{}

func (CentroidCodec) AppendData(dst []byte, d CentroidData) []byte {
	for _, v := range [4]float64{d.Moment.X, d.Moment.Y, d.Moment.Z, d.Mass} {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}
func (CentroidCodec) DecodeData(b []byte) (CentroidData, int) {
	f := func(i int) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:])) }
	return CentroidData{Moment: paratreet.V(f(0), f(1), f(2)), Mass: f(3)}, 32
}

// GravityVisitor mirrors Fig 7: open() by centroid sphere-box test,
// node() applies the monopole approximation, leaf() exact forces.
type GravityVisitor struct{ Theta, Soft float64 }

func (v GravityVisitor) Open(src *paratreet.Node[CentroidData], t *paratreet.Bucket) bool {
	c := src.Data.Centroid()
	return t.Box.IntersectsSphere(c, src.Box.FarDistSq(c)/(v.Theta*v.Theta))
}

func (v GravityVisitor) Node(src *paratreet.Node[CentroidData], t *paratreet.Bucket) {
	c := src.Data.Centroid()
	for i := range t.Particles {
		t.Particles[i].Acc = t.Particles[i].Acc.Add(gravApprox(c, src.Data.Mass, t.Particles[i].Pos, v.Soft))
	}
}

func (v GravityVisitor) Leaf(src *paratreet.Node[CentroidData], t *paratreet.Bucket) {
	for i := range t.Particles {
		p := &t.Particles[i]
		for j := range src.Particles {
			if s := &src.Particles[j]; s.ID != p.ID {
				p.Acc = p.Acc.Add(gravApprox(s.Pos, s.Mass, p.Pos, v.Soft))
			}
		}
	}
}

// gravApprox is the softened Newtonian kernel both node() and leaf() use.
func gravApprox(src paratreet.Vec3, mass float64, at paratreet.Vec3, soft float64) paratreet.Vec3 {
	dx := src.Sub(at)
	r2 := dx.NormSq() + soft*soft
	return dx.Scale(mass / (r2 * math.Sqrt(r2)))
}

func main() {
	var (
		n     = flag.Int("n", 50000, "number of particles")
		iters = flag.Int("iters", 5, "iterations to run")
		theta = flag.Float64("theta", 0.7, "Barnes-Hut opening angle")
		dt    = flag.Float64("dt", 1e-3, "leapfrog step")
		procs = flag.Int("procs", 2, "simulated processes")
		wpp   = flag.Int("wpp", 2, "workers per process")
	)
	flag.Parse()

	ps := particle.NewPlummer(*n, 42, paratreet.V(0, 0, 0), 0.5)
	cfg := paratreet.Config{
		Procs: *procs, WorkersPerProc: *wpp,
		Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC, BucketSize: 16,
	}
	sim, err := paratreet.NewSimulation[CentroidData](cfg, CentroidAcc{}, CentroidCodec{}, ps)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	driver := paratreet.DriverFuncs[CentroidData]{
		TraversalFn: func(s *paratreet.Simulation[CentroidData], iter int) {
			s.ForEachBucket(func(_ *paratreet.Partition[CentroidData], b *paratreet.Bucket) {
				for i := range b.Particles {
					b.Particles[i].Acc = paratreet.Vec3{}
				}
			})
			paratreet.StartDown(s, func(p *paratreet.Partition[CentroidData]) GravityVisitor {
				return GravityVisitor{Theta: *theta, Soft: 1e-3}
			})
		},
		PostTraversalFn: func(s *paratreet.Simulation[CentroidData], iter int) {
			var ke float64
			s.ForEachBucket(func(_ *paratreet.Partition[CentroidData], b *paratreet.Bucket) {
				for i := range b.Particles {
					p := &b.Particles[i]
					p.Vel = p.Vel.Add(p.Acc.Scale(*dt))
					p.Pos = p.Pos.Add(p.Vel.Scale(*dt))
					ke += 0.5 * p.Mass * p.Vel.NormSq()
				}
			})
			fmt.Printf("iter %2d  kinetic energy %.6f  iter time %v\n",
				iter, ke, s.LastIterTime().Round(1e6))
		},
	}
	if err := sim.Run(*iters, driver); err != nil {
		log.Fatal(err)
	}
	st := sim.Stats()
	fmt.Printf("done: %d particles, %d iterations, %d remote requests, %.1f MB shipped\n",
		*n, *iters, st.NodeRequests, float64(st.BytesSent)/1e6)
}
