// Planetesimal-disk collision detection (the paper's §IV case study,
// scaled down): a disk of solid bodies orbits a star with a Jupiter-mass
// perturber; every step runs Barnes-Hut gravity and a collision sweep over
// one longest-dimension tree, and detected collisions are binned by
// distance from the star, with the mean-motion resonances marked.
//
// Run with: go run ./examples/collision
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"paratreet"
	"paratreet/internal/collision"
	"paratreet/internal/gravity"
	"paratreet/internal/particle"
)

func main() {
	var (
		n     = flag.Int("n", 8000, "number of planetesimals")
		steps = flag.Int("steps", 40, "integration steps")
		dt    = flag.Float64("dt", 0.02, "step size (code units; 2*pi = 1 year at 1 AU)")
		boost = flag.Float64("boost", 5000, "body radius inflation (collisions at laptop N)")
	)
	flag.Parse()

	dp := particle.DefaultDiskParams()
	dp.BodyRadius *= *boost
	ps := particle.NewDisk(*n, 11, dp)

	sim, err := paratreet.NewSimulation[collision.DiskData](paratreet.Config{
		Procs: 2, WorkersPerProc: 2,
		Tree: paratreet.TreeLongestDim, Decomp: paratreet.DecompORB, BucketSize: 32,
	}, collision.DiskAccumulator{}, collision.DiskCodec{}, ps)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	rec := collision.NewRecorder()
	gp := gravity.Params{G: 1, Theta: 0.7, Soft: 1e-5}
	driver := paratreet.DriverFuncs[collision.DiskData]{
		TraversalFn: func(s *paratreet.Simulation[collision.DiskData], iter int) {
			s.ForEachBucket(func(_ *paratreet.Partition[collision.DiskData], b *paratreet.Bucket) {
				particle.ResetAcc(b.Particles)
			})
			for _, p := range s.Partitions() {
				collision.Attach(p.Buckets())
			}
			paratreet.StartDown(s, func(p *paratreet.Partition[collision.DiskData]) gravity.Visitor[collision.DiskData] {
				return collision.DiskGravityVisitor(gp)
			})
			paratreet.StartDown(s, func(p *paratreet.Partition[collision.DiskData]) collision.Visitor[collision.DiskData] {
				return collision.DiskCollisionVisitor(*dt, dp.StarMass, rec, 2)
			})
		},
		PostTraversalFn: func(s *paratreet.Simulation[collision.DiskData], iter int) {
			s.ForEachBucket(func(_ *paratreet.Partition[collision.DiskData], b *paratreet.Bucket) {
				gravity.KickDrift(b.Particles, *dt)
			})
		},
	}
	if err := sim.Run(*steps, driver); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("evolved %d planetesimals for %d steps: %d collisions\n", *n, *steps, rec.Count())
	const bins = 20
	hist := collision.Histogram(rec.Events, dp.RMin, dp.RMax, bins)
	width := (dp.RMax - dp.RMin) / bins
	max := 1
	for _, c := range hist {
		if c > max {
			max = c
		}
	}
	resonances := map[string]float64{
		"3:1": collision.ResonanceRadius(dp.PlanetA, 3, 1),
		"2:1": collision.ResonanceRadius(dp.PlanetA, 2, 1),
		"5:3": collision.ResonanceRadius(dp.PlanetA, 5, 3),
	}
	for i, c := range hist {
		lo := dp.RMin + float64(i)*width
		mark := ""
		for name, r := range resonances {
			if r >= lo && r < lo+width {
				mark = "  <-- " + name + " resonance"
			}
		}
		fmt.Printf("r=%5.2f AU %4d %s%s\n", lo+width/2, c, strings.Repeat("*", c*40/max), mark)
	}
}
