// SPH density and pressure forces over a cosmological volume, composing
// the library's knn and sph applications: one up-and-down k-nearest-
// neighbors traversal per iteration fixes each particle's smoothing
// length and neighbor list (ParaTreeT's algorithm from §III-B), then
// density, equation of state, and pressure accelerations are evaluated
// from the lists.
//
// Run with: go run ./examples/sph
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	"paratreet"
	"paratreet/internal/knn"
	"paratreet/internal/particle"
	"paratreet/internal/sph"
)

func main() {
	var (
		n     = flag.Int("n", 30000, "number of particles")
		k     = flag.Int("k", 32, "neighbors per particle")
		iters = flag.Int("iters", 3, "iterations")
		procs = flag.Int("procs", 2, "simulated processes")
		wpp   = flag.Int("wpp", 2, "workers per process")
	)
	flag.Parse()

	par := sph.Params{K: *k, Gamma: 5.0 / 3.0, U: 1}
	ps := particle.NewCosmological(*n, 7, paratreet.Box{Max: paratreet.V(1, 1, 1)})
	sim, err := paratreet.NewSimulation[knn.Data](paratreet.Config{
		Procs: *procs, WorkersPerProc: *wpp,
		Tree: paratreet.TreeOct, Decomp: paratreet.DecompSFC, BucketSize: 16,
	}, knn.Accumulator{}, knn.Codec{}, ps)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	driver := paratreet.DriverFuncs[knn.Data]{
		TraversalFn: func(s *paratreet.Simulation[knn.Data], iter int) {
			for _, p := range s.Partitions() {
				knn.Attach(p.Buckets(), par.K)
			}
			paratreet.StartUpAndDown(s, func(p *paratreet.Partition[knn.Data]) knn.Visitor {
				return knn.Visitor{K: par.K, ExcludeSelf: true}
			})
		},
		PostTraversalFn: func(s *paratreet.Simulation[knn.Data], iter int) {
			// Density + EOS from the neighbor lists, then pressure forces.
			state := map[int64][3]float64{}
			s.ForEachBucket(func(_ *paratreet.Partition[knn.Data], b *paratreet.Bucket) {
				st := b.State.(*knn.State)
				for i := range b.Particles {
					sph.DensityFromNeighbors(&b.Particles[i], st.Neighbors(i))
					sph.Pressure(&b.Particles[i], par)
					p := b.Particles[i]
					state[p.ID] = [3]float64{p.Density, p.Pressure, p.SmoothLen}
				}
			})
			lookup := func(id int64) (float64, float64, float64, bool) {
				v, ok := state[id]
				return v[0], v[1], v[2], ok
			}
			s.ForEachBucket(func(_ *paratreet.Partition[knn.Data], b *paratreet.Bucket) {
				st := b.State.(*knn.State)
				for i := range b.Particles {
					b.Particles[i].Acc = paratreet.Vec3{}
					sph.PressureAccel(&b.Particles[i], st.Neighbors(i), lookup)
				}
			})
		},
	}
	if err := sim.Run(*iters, driver); err != nil {
		log.Fatal(err)
	}

	// Report the density distribution: a cosmological volume should span
	// orders of magnitude between voids and halos.
	var rhos []float64
	for _, p := range sim.Particles() {
		if p.Density > 0 {
			rhos = append(rhos, p.Density)
		}
	}
	sort.Float64s(rhos)
	q := func(f float64) float64 { return rhos[int(f*float64(len(rhos)-1))] }
	fmt.Printf("SPH over %d particles, k=%d:\n", *n, *k)
	fmt.Printf("  density quantiles  10%%: %.3g  50%%: %.3g  90%%: %.3g  99%%: %.3g\n",
		q(0.10), q(0.50), q(0.90), q(0.99))
	fmt.Printf("  density dynamic range: %.1fx\n", q(0.99)/q(0.10))
	fmt.Printf("  log10 span: %.2f decades\n", math.Log10(q(0.99)/q(0.10)))
	fmt.Printf("  iteration time: %v\n", sim.LastIterTime().Round(1e6))
}
