// Quickstart: the smallest complete ParaTreeT application.
//
// It defines a Data type (particle counts), a Visitor that counts, for
// every particle, how many other particles lie within a fixed radius —  a
// classic fixed-radius neighbor census — and runs one traversal on a
// simulated 2-process machine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"paratreet"
	"paratreet/internal/particle"
)

// Count is the per-node Data: how many particles the subtree holds.
type Count struct{ N int }

// CountAcc implements the Data abstraction (leaf extract / identity /
// merge), the analogue of the paper's Fig 6.
type CountAcc struct{}

func (CountAcc) FromLeaf(ps []paratreet.Particle, _ paratreet.Box) Count { return Count{N: len(ps)} }
func (CountAcc) Empty() Count                                            { return Count{} }
func (CountAcc) Add(a, b Count) Count                                    { return Count{N: a.N + b.N} }

// CountCodec ships Count across simulated processes.
type CountCodec struct{}

func (CountCodec) AppendData(dst []byte, d Count) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(d.N))
}
func (CountCodec) DecodeData(b []byte) (Count, int) {
	return Count{N: int(binary.LittleEndian.Uint64(b))}, 8
}

// CensusVisitor counts neighbors within Radius of each target particle,
// the analogue of the paper's Fig 7: Open prunes distant nodes, Leaf does
// exact distance tests. Results accumulate in the particle's Potential
// field for simplicity.
type CensusVisitor struct{ Radius float64 }

func (v CensusVisitor) Open(src *paratreet.Node[Count], t *paratreet.Bucket) bool {
	return src.Box.DistSq(t.Box.Center()) <=
		square(v.Radius+t.Box.Dims().Norm()/2)
}

func (v CensusVisitor) Node(src *paratreet.Node[Count], t *paratreet.Bucket) {}

func (v CensusVisitor) Leaf(src *paratreet.Node[Count], t *paratreet.Bucket) {
	r2 := v.Radius * v.Radius
	for i := range t.Particles {
		p := &t.Particles[i]
		for j := range src.Particles {
			s := &src.Particles[j]
			if s.ID != p.ID && s.Pos.DistSq(p.Pos) <= r2 {
				p.Potential++
			}
		}
	}
}

func square(x float64) float64 { return x * x }

func main() {
	ps := particle.NewUniform(20000, 1, paratreet.Box{Max: paratreet.V(1, 1, 1)})

	// The configuration object of the paper's Fig 8.
	cfg := paratreet.Config{
		Procs:          2,
		WorkersPerProc: 2,
		Tree:           paratreet.TreeOct,
		Decomp:         paratreet.DecompSFC,
		BucketSize:     16,
	}
	sim, err := paratreet.NewSimulation[Count](cfg, CountAcc{}, CountCodec{}, ps)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	driver := paratreet.DriverFuncs[Count]{
		TraversalFn: func(s *paratreet.Simulation[Count], iter int) {
			paratreet.StartDown(s, func(p *paratreet.Partition[Count]) CensusVisitor {
				return CensusVisitor{Radius: 0.02}
			})
		},
	}
	if err := sim.Run(1, driver); err != nil {
		log.Fatal(err)
	}

	var total, max float64
	for _, p := range sim.Particles() {
		total += p.Potential
		if p.Potential > max {
			max = p.Potential
		}
	}
	n := float64(len(sim.Particles()))
	fmt.Printf("neighbor census of %d particles within r=0.02:\n", len(sim.Particles()))
	fmt.Printf("  mean neighbors: %.2f  max: %.0f\n", total/n, max)
	fmt.Printf("  iteration time: %v  remote node requests: %d\n",
		sim.LastIterTime().Round(1e6), sim.Stats().NodeRequests)
}
