// Command serve_smoke is the CI smoke stage for paratreet-serve: it
// builds the daemon, starts it on an ephemeral port, issues kNN and
// range queries over HTTP, and checks a clean SIGTERM drain (exit 0
// with the drain banner). Run from the repository root:
//
//	go run ./scripts
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve smoke:", err)
		os.Exit(1)
	}
	fmt.Println("serve smoke passed")
}

func run() error {
	dir, err := os.MkdirTemp("", "paratreet-serve-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "paratreet-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/paratreet-serve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build: %w", err)
	}

	daemon := exec.Command(bin, "-addr", "127.0.0.1:0", "-n", "4000", "-procs", "2", "-wpp", "2",
		"-batch", "8", "-batch-wait", "1ms")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		return err
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return err
	}
	defer daemon.Process.Kill()

	// The daemon prints its resolved ephemeral address once listening.
	var base string
	var banner []string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		banner = append(banner, line)
		if i := strings.Index(line, "listening on "); i >= 0 {
			base = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		return fmt.Errorf("no listening banner; daemon output: %q", banner)
	}

	post := func(path, body string, out any) error {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: %d %s", path, resp.StatusCode, buf.Bytes())
		}
		return json.Unmarshal(buf.Bytes(), out)
	}
	var knn struct {
		Count  int `json:"count"`
		Timing struct {
			BatchSize int `json:"batch_size"`
		} `json:"timing"`
	}
	if err := post("/query/knn", `{"pos":[0.5,0.5,0.5],"k":8}`, &knn); err != nil {
		return err
	}
	if knn.Count != 8 || knn.Timing.BatchSize < 1 {
		return fmt.Errorf("knn answered count=%d batch=%d, want 8 hits", knn.Count, knn.Timing.BatchSize)
	}
	var rng struct {
		Count int `json:"count"`
		Hits  []struct {
			Dist float64 `json:"dist"`
		} `json:"hits"`
	}
	if err := post("/query/range", `{"pos":[0.5,0.5,0.5],"radius":0.25}`, &rng); err != nil {
		return err
	}
	if rng.Count != len(rng.Hits) {
		return fmt.Errorf("range count %d != %d hits", rng.Count, len(rng.Hits))
	}
	for _, h := range rng.Hits {
		if h.Dist > 0.25 {
			return fmt.Errorf("range hit at dist %v outside radius", h.Dist)
		}
	}

	// Clean drain: SIGTERM, exit 0, drain banner printed.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	rest := make(chan string, 1)
	go func() {
		var b strings.Builder
		for sc.Scan() {
			fmt.Fprintln(&b, sc.Text())
		}
		rest <- b.String()
	}()
	var tail string
	select {
	case tail = <-rest:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("daemon did not drain within 30s")
	}
	if err := daemon.Wait(); err != nil {
		return fmt.Errorf("daemon exit after SIGTERM: %w\noutput:\n%s", err, tail)
	}
	if !strings.Contains(tail, "drained") {
		return fmt.Errorf("drain banner missing from shutdown output:\n%s", tail)
	}
	return nil
}
