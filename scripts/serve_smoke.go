// Command serve_smoke is the CI smoke stage for paratreet-serve: it
// builds the daemon, starts it on an ephemeral port, issues kNN and
// range queries over HTTP, scrapes /metrics and checks the Prometheus
// exposition is well formed, verifies the /healthz vs /readyz split
// through a graceful SIGTERM drain (readiness drops to 503 during the
// -drain-grace window, exit 0 with the drain banner), and finally runs
// a second daemon under an impossible SLO to prove the watchdog flips
// readiness and counts breaches. Run from the repository root:
//
//	go run ./scripts
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve smoke:", err)
		os.Exit(1)
	}
	fmt.Println("serve smoke passed")
}

func run() error {
	dir, err := os.MkdirTemp("", "paratreet-serve-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "paratreet-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/paratreet-serve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build: %w", err)
	}
	if err := smokeQueryAndDrain(bin); err != nil {
		return err
	}
	return smokeSLOBreach(bin)
}

// startDaemon launches the binary and waits for the listening banner,
// returning the base URL and the stdout scanner (positioned after the
// banner) for the caller to keep draining.
func startDaemon(bin string, extra ...string) (*exec.Cmd, string, *bufio.Scanner, error) {
	args := append([]string{"-addr", "127.0.0.1:0", "-n", "4000", "-procs", "2", "-wpp", "2",
		"-batch", "8", "-batch-wait", "1ms"}, extra...)
	daemon := exec.Command(bin, args...)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		return nil, "", nil, err
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return nil, "", nil, err
	}
	var base string
	var banner []string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		banner = append(banner, line)
		if i := strings.Index(line, "listening on "); i >= 0 {
			base = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		daemon.Process.Kill()
		return nil, "", nil, fmt.Errorf("no listening banner; daemon output: %q", banner)
	}
	return daemon, base, sc, nil
}

func get(base, path string) (int, string, error) {
	resp, err := http.Get(base + path)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, "", err
	}
	return resp.StatusCode, buf.String(), nil
}

func smokeQueryAndDrain(bin string) error {
	daemon, base, sc, err := startDaemon(bin, "-drain-grace", "2s")
	if err != nil {
		return err
	}
	defer daemon.Process.Kill()

	// Liveness and readiness are both up before traffic.
	if code, body, err := get(base, "/healthz"); err != nil || code != http.StatusOK {
		return fmt.Errorf("pre-drain /healthz: %d %s (%v)", code, body, err)
	}
	if code, body, err := get(base, "/readyz"); err != nil || code != http.StatusOK {
		return fmt.Errorf("pre-drain /readyz: %d %s (%v)", code, body, err)
	}

	post := func(path, body string, out any) error {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: %d %s", path, resp.StatusCode, buf.Bytes())
		}
		return json.Unmarshal(buf.Bytes(), out)
	}
	var knn struct {
		Count  int `json:"count"`
		Timing struct {
			BatchSize int `json:"batch_size"`
		} `json:"timing"`
	}
	if err := post("/query/knn", `{"pos":[0.5,0.5,0.5],"k":8}`, &knn); err != nil {
		return err
	}
	if knn.Count != 8 || knn.Timing.BatchSize < 1 {
		return fmt.Errorf("knn answered count=%d batch=%d, want 8 hits", knn.Count, knn.Timing.BatchSize)
	}
	var rng struct {
		Count int `json:"count"`
		Hits  []struct {
			Dist float64 `json:"dist"`
		} `json:"hits"`
	}
	if err := post("/query/range", `{"pos":[0.5,0.5,0.5],"radius":0.25}`, &rng); err != nil {
		return err
	}
	if rng.Count != len(rng.Hits) {
		return fmt.Errorf("range count %d != %d hits", rng.Count, len(rng.Hits))
	}
	for _, h := range rng.Hits {
		if h.Dist > 0.25 {
			return fmt.Errorf("range hit at dist %v outside radius", h.Dist)
		}
	}

	// Scrape /metrics after traffic and lint the exposition.
	code, body, err := get(base, "/metrics")
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("/metrics: %d (%v)", code, err)
	}
	if err := checkExposition(body); err != nil {
		return fmt.Errorf("/metrics exposition: %w", err)
	}

	// Graceful drain: SIGTERM drops /readyz to 503 during the grace
	// window while the process is still alive and serving.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	rest := make(chan string, 1)
	go func() {
		var b strings.Builder
		for sc.Scan() {
			fmt.Fprintln(&b, sc.Text())
		}
		rest <- b.String()
	}()
	saw503 := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		code, body, err := get(base, "/readyz")
		if err != nil {
			break // listener already closed; must have seen the 503 first
		}
		if code == http.StatusServiceUnavailable && strings.Contains(body, `"draining":true`) {
			saw503 = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !saw503 {
		return fmt.Errorf("never observed /readyz 503 during the drain-grace window")
	}

	var tail string
	select {
	case tail = <-rest:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("daemon did not drain within 30s")
	}
	if err := daemon.Wait(); err != nil {
		return fmt.Errorf("daemon exit after SIGTERM: %w\noutput:\n%s", err, tail)
	}
	if !strings.Contains(tail, "drained") {
		return fmt.Errorf("drain banner missing from shutdown output:\n%s", tail)
	}
	return nil
}

// smokeSLOBreach runs a daemon under an objective no real request can
// meet and checks the watchdog drops readiness and counts the breach.
func smokeSLOBreach(bin string) error {
	daemon, base, sc, err := startDaemon(bin,
		"-slo-p99", "1ns", "-slo-min-samples", "1",
		"-slo-window", "30s", "-slo-interval", "50ms")
	if err != nil {
		return err
	}
	defer daemon.Process.Kill()
	drained := make(chan struct{})
	go func() { // keep stdout drained so the daemon never blocks on a full pipe
		defer close(drained)
		for sc.Scan() {
		}
	}()

	resp, err := http.Post(base+"/query/knn", "application/json",
		strings.NewReader(`{"pos":[0.5,0.5,0.5],"k":4}`))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("slo daemon query: %d", resp.StatusCode)
	}

	breached := false
	var last string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		code, body, err := get(base, "/readyz")
		if err != nil {
			return err
		}
		last = body
		if code == http.StatusServiceUnavailable && strings.Contains(body, `"breached":true`) {
			breached = true
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !breached {
		return fmt.Errorf("watchdog never breached an impossible SLO; last /readyz: %s", last)
	}
	code, body, err := get(base, "/metrics")
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("slo daemon /metrics: %d (%v)", code, err)
	}
	re := regexp.MustCompile(`(?m)^serve_slo_breaches_total (\d+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		return fmt.Errorf("serve_slo_breaches_total missing from exposition")
	}
	if n, _ := strconv.Atoi(m[1]); n < 1 {
		return fmt.Errorf("serve_slo_breaches_total = %s, want >= 1", m[1])
	}
	daemon.Process.Signal(syscall.SIGTERM)
	daemon.Wait()
	<-drained
	return nil
}

// checkExposition lints Prometheus text exposition: every sample line
// parses, every family has HELP and TYPE comments before its samples,
// histogram buckets carry ascending le with a +Inf terminal, and the
// serve telemetry families this PR adds are all present.
func checkExposition(out string) error {
	for _, want := range []string{
		"# TYPE serve_requests_total counter",
		"# TYPE serve_request_ns histogram",
		"# TYPE serve_request_ns_summary summary",
		`serve_request_ns_summary{quantile="0.99"}`,
		"# TYPE serve_queue_depth gauge",
		"# TYPE go_heap_bytes gauge",
		"# TYPE go_goroutines gauge",
	} {
		if !strings.Contains(out, want) {
			return fmt.Errorf("missing %q", want)
		}
	}
	sampleRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?\d+$`)
	helped := map[string]bool{}
	typed := map[string]bool{}
	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_count", "_sum"} {
			if f, ok := strings.CutSuffix(name, suf); ok {
				return f
			}
		}
		return name
	}
	prevLe := map[string]int64{}
	sawInf := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if f, ok := strings.CutPrefix(line, "# HELP "); ok {
			helped[strings.Fields(f)[0]] = true
			continue
		}
		if f, ok := strings.CutPrefix(line, "# TYPE "); ok {
			typed[strings.Fields(f)[0]] = true
			continue
		}
		if !sampleRe.MatchString(line) {
			return fmt.Errorf("malformed sample line %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		fam := family(name)
		if !helped[fam] || !typed[fam] {
			return fmt.Errorf("sample %q before its HELP/TYPE comments", line)
		}
		if strings.HasSuffix(name, "_bucket") {
			i := strings.Index(line, `le="`)
			if i < 0 {
				return fmt.Errorf("bucket line without le label: %q", line)
			}
			leStr := line[i+4:]
			leStr = leStr[:strings.Index(leStr, `"`)]
			if leStr == "+Inf" {
				sawInf[fam] = true
				continue
			}
			le, err := strconv.ParseInt(leStr, 10, 64)
			if err != nil {
				return fmt.Errorf("non-integer le in %q", line)
			}
			if prev, ok := prevLe[fam]; ok && le <= prev {
				return fmt.Errorf("le not ascending for %s at %q", fam, line)
			}
			prevLe[fam] = le
		}
	}
	for fam := range prevLe {
		if !sawInf[fam] {
			return fmt.Errorf("histogram %s missing +Inf bucket", fam)
		}
	}
	return nil
}
