#!/bin/sh
# CI gate: build, vet, full tests, then the race-mode pass in short mode.
# Run from the repository root (or via `make ci`).
set -eu

cd "$(dirname "$0")/.."

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> go test"
go test ./...

echo "==> go test -race -short"
go test -race -short ./...

echo "CI gate passed."
