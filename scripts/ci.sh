#!/bin/sh
# CI gate: build, vet, the repo's own static analyzers, full tests, then
# the race-mode pass in short mode. Run from the repository root (or via
# `make ci`). Every stage is fatal: a vet or lint finding fails the gate.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> gofmt"
# gofmt gate: the lint golden tests and waiver comments are line-anchored,
# so formatting drift is a correctness hazard, not just style.
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> paratreet-lint"
# The loader expands ./... over the whole module — internal/..., cmd/...,
# examples/, scripts/, and the root package — so every package faces the
# eight analyzers (see `paratreet-lint -list`), waiver hygiene included.
go run ./cmd/paratreet-lint ./internal/... ./cmd/... ./examples/... ./scripts/... .

echo "==> go test"
go test ./...

echo "==> go test -race -short"
go test -race -short ./...

echo "==> chaos (differential fault injection)"
# The fault-injection differential gate: gravity and kNN results must be
# unchanged by dropped/duplicated/jittered delivery (fixed seed inside the
# tests), with the race detector watching the retry and drop-audit paths.
go test -race -short -run 'TestChaos' .

echo "==> incremental differential gate"
# The incremental-build differential gate: an Incremental simulation must
# stay bit-identical to a from-scratch one through multi-step drift
# workloads — trees, buckets, float Data, and traversal answers — across
# the supported decomp/policy matrix, including the faulted variant
# (TestIncrementalFaultedMatchesScratch) where every cache fetch rides an
# unreliable link. The serve pass covers the refresh seam: concurrent
# waves racing a delta Refresh must answer from exactly one tree state,
# and the stats endpoints must stay race-free mid-refresh.
go test -race -short -run 'TestIncremental' .
go test -race -short -run 'TestEngineStatsDuringRefresh|TestWavesRaceDeltaRefresh' ./internal/serve/

echo "==> trace pipeline"
# End-to-end timeline check: a quick traced kNN run must produce a Chrome
# trace the analyzer accepts (paratreet-trace exits nonzero on malformed
# or empty traces), with every report section rendered.
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/paratreet-bench knn -quick -trace 65536 \
	-trace-out "$tracedir/trace.json" -metrics-out "$tracedir/metrics.json" > /dev/null
go run ./cmd/paratreet-trace validate "$tracedir/trace.json"
report="$(go run ./cmd/paratreet-trace report "$tracedir/trace.json")"
for section in summary gantt phases spans "fetch rtt" "latency quantiles" "critical path"; do
	case "$report" in
	*"$section"*) ;;
	*)
		echo "trace report missing section: $section" >&2
		exit 1
		;;
	esac
done

echo "==> faulted trace pipeline"
# Same pipeline under injected faults: the trace must record the drop and
# retry instants, proving the fault events flow into the exporter.
go run ./cmd/paratreet-bench knn -quick -faults drop=0.05,dup=0.05,seed=7 \
	-trace-out "$tracedir/faulted.json" -metrics-out "$tracedir/faulted-metrics.json" > /dev/null
go run ./cmd/paratreet-trace validate "$tracedir/faulted.json"
faulted="$(go run ./cmd/paratreet-trace report "$tracedir/faulted.json")"
for kind in drop retry; do
	case "$faulted" in
	*"$kind"*) ;;
	*)
		echo "faulted trace report missing $kind events" >&2
		exit 1
		;;
	esac
done

echo "==> serve smoke"
# End-to-end daemon check: build paratreet-serve, start it on an
# ephemeral port, answer kNN and range queries over HTTP, then verify a
# clean SIGTERM drain (exit 0, drain banner).
go run ./scripts

echo "==> bench-gate"
# Perf trajectory gate: re-measure the benchmark set and compare against
# the committed baseline snapshot, failing on any benchmark more than
# BENCH_TOLERANCE (fractional, default 0.15 = ±15%) slower or allocating
# beyond it. ns/op baselines only transfer between like machines, so on a
# foreign or heavily loaded host set BENCH_GATE=off (the schema and
# comparator themselves stay covered by go test ./internal/benchfmt).
# After an intentional perf change, regenerate and commit the baseline:
#   go run ./cmd/paratreet-bench bench -quick -bench-out BENCH_baseline.json
if [ "${BENCH_GATE:-on}" = "off" ]; then
	echo "bench-gate skipped (BENCH_GATE=off)"
else
	go run ./cmd/paratreet-bench bench -quick \
		-bench-compare BENCH_baseline.json \
		-bench-tolerance "${BENCH_TOLERANCE:-0.15}"
fi

echo "CI gate passed."
