#!/bin/sh
# CI gate: build, vet, the repo's own static analyzers, full tests, then
# the race-mode pass in short mode. Run from the repository root (or via
# `make ci`). Every stage is fatal: a vet or lint finding fails the gate.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> paratreet-lint"
go run ./cmd/paratreet-lint ./...

echo "==> go test"
go test ./...

echo "==> go test -race -short"
go test -race -short ./...

echo "CI gate passed."
