#!/bin/sh
# CI gate: build, vet, the repo's own static analyzers, full tests, then
# the race-mode pass in short mode. Run from the repository root (or via
# `make ci`). Every stage is fatal: a vet or lint finding fails the gate.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> paratreet-lint"
go run ./cmd/paratreet-lint ./...

echo "==> go test"
go test ./...

echo "==> go test -race -short"
go test -race -short ./...

echo "==> trace pipeline"
# End-to-end timeline check: a quick traced kNN run must produce a Chrome
# trace the analyzer accepts (paratreet-trace exits nonzero on malformed
# or empty traces), with every report section rendered.
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/paratreet-bench knn -quick -trace 65536 \
	-trace-out "$tracedir/trace.json" -metrics-out "$tracedir/metrics.json" > /dev/null
go run ./cmd/paratreet-trace validate "$tracedir/trace.json"
report="$(go run ./cmd/paratreet-trace report "$tracedir/trace.json")"
for section in summary gantt phases spans "fetch rtt" "critical path"; do
	case "$report" in
	*"$section"*) ;;
	*)
		echo "trace report missing section: $section" >&2
		exit 1
		;;
	esac
done

echo "CI gate passed."
