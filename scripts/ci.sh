#!/bin/sh
# CI gate: build, vet, the repo's own static analyzers, full tests, then
# the race-mode pass in short mode. Run from the repository root (or via
# `make ci`). Every stage is fatal: a vet or lint finding fails the gate.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> paratreet-lint"
go run ./cmd/paratreet-lint ./...

echo "==> go test"
go test ./...

echo "==> go test -race -short"
go test -race -short ./...

echo "==> chaos (differential fault injection)"
# The fault-injection differential gate: gravity and kNN results must be
# unchanged by dropped/duplicated/jittered delivery (fixed seed inside the
# tests), with the race detector watching the retry and drop-audit paths.
go test -race -short -run 'TestChaos' .

echo "==> trace pipeline"
# End-to-end timeline check: a quick traced kNN run must produce a Chrome
# trace the analyzer accepts (paratreet-trace exits nonzero on malformed
# or empty traces), with every report section rendered.
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/paratreet-bench knn -quick -trace 65536 \
	-trace-out "$tracedir/trace.json" -metrics-out "$tracedir/metrics.json" > /dev/null
go run ./cmd/paratreet-trace validate "$tracedir/trace.json"
report="$(go run ./cmd/paratreet-trace report "$tracedir/trace.json")"
for section in summary gantt phases spans "fetch rtt" "critical path"; do
	case "$report" in
	*"$section"*) ;;
	*)
		echo "trace report missing section: $section" >&2
		exit 1
		;;
	esac
done

echo "==> faulted trace pipeline"
# Same pipeline under injected faults: the trace must record the drop and
# retry instants, proving the fault events flow into the exporter.
go run ./cmd/paratreet-bench knn -quick -faults drop=0.05,dup=0.05,seed=7 \
	-trace-out "$tracedir/faulted.json" -metrics-out "$tracedir/faulted-metrics.json" > /dev/null
go run ./cmd/paratreet-trace validate "$tracedir/faulted.json"
faulted="$(go run ./cmd/paratreet-trace report "$tracedir/faulted.json")"
for kind in drop retry; do
	case "$faulted" in
	*"$kind"*) ;;
	*)
		echo "faulted trace report missing $kind events" >&2
		exit 1
		;;
	esac
done

echo "CI gate passed."
