module paratreet

go 1.24
